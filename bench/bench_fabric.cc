/**
 * @file
 * Energy per serviced event for the three event-servicing paths:
 *
 *   linked   the peripheral event-linking fabric routes the whole sensing
 *            chain (timer -> sample -> prepare -> transmit -> gate); the
 *            event processor never wakes;
 *   EP       the baseline architecture: the event processor's ISRs
 *            service every regular event (application v1);
 *   uC       the SNAP-style ablation: the EP degenerates into a WAKEUP
 *            dispatcher and the general-purpose microcontroller does the
 *            work over the byte-serial bus.
 *
 * Each path runs the same 100 Hz sampling workload on one node; the
 * servicing engines' measured activity factors are then carried into the
 * Equation 1 technology model to project energy per event across process
 * nodes (the §5 methodology: pick the process for the activity factor you
 * actually run at).
 *
 * The second half scales up: a 256-node linked network against the same
 * network unlinked, gated on the K = 1/2/4 oracle (identical counters and
 * a byte-identical merged stats tree) in both configurations, reporting
 * simulated kernel events per sensor action.
 *
 * `--smoke` shrinks both halves for CI.
 */

#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "core/apps.hh"
#include "core/network.hh"
#include "core/sensor_node.hh"
#include "fabric/event_fabric.hh"
#include "scenario/lower.hh"
#include "scenario/scenario.hh"
#include "sim/simulation.hh"
#include "tech/eq1_model.hh"

namespace {

using namespace ulp;
using namespace ulp::core;
using fabric::Link;
using fabric::Sink;
using fabric::Source;

std::vector<Link>
sensingChain()
{
    return {{Source::Timer0Fire, Sink::AdcSample},
            {Source::AdcThreshold, Sink::MsgProcTx},
            {Source::MsgTxReady, Sink::RadioTx},
            {Source::RadioTxDone, Sink::RadioGate}};
}

/** The uC-does-everything variant of v1 (the bench_ablation_no_ep app). */
apps::NodeApp
buildMcuApp(std::uint32_t period_cycles)
{
    apps::NodeApp app;
    app.name = "fabric-uc-path";
    app.ep = epAssemble(R"(
timer_isr:
    WAKEUP 1
txready_isr:
    WAKEUP 2
txdone_isr:
    WAKEUP 3
.isr Timer0, timer_isr
.isr MsgTxReady, txready_isr
.isr RadioTxDone, txdone_isr
)");
    std::string mc = sim::csprintf(
        ".equ MCU_CODE, %u\n"
        ".equ P_PERIOD_HI, %u\n"
        ".equ P_PERIOD_LO, %u\n",
        map::mcuCodeBase, (period_cycles >> 8) & 0xFF, period_cycles & 0xFF);
    mc += R"(
.org MCU_CODE
init:
    LDI r0, 1
    STS MSG_PAYLOAD_LEN, r0
    LDI r0, P_PERIOD_HI
    STS TIMER0_LOADHI, r0
    LDI r0, P_PERIOD_LO
    STS TIMER0_LOADLO, r0
    LDI r0, 3
    STS TIMER0_CTRL, r0
    SLEEP
h_timer:
    LDS r0, SENSOR_DATA
    STS MSG_PAYLOAD, r0
    LDI r0, 1
    STS MSG_CTRL, r0
    SLEEP
h_txready:
    LDP p1, MSG_OUTBUF
    LDP p2, RADIO_TXFIFO
    LDI r8, 12
h_cp:
    LDX r0, p1
    STX p2, r0
    INCP p1
    INCP p2
    DEC r8
    JNZ h_cp
    LDI r0, 12
    STS RADIO_TXLEN, r0
    LDI r0, 1
    STS RADIO_CTRL, r0
    SLEEP
h_txdone:
    SLEEP
)";
    app.mcu = mcu::assemble(mc, epDefaultSymbols());
    app.initEntry = app.mcu.symbol("init");
    app.vectors[1] = app.mcu.symbol("h_timer");
    app.vectors[2] = app.mcu.symbol("h_txready");
    app.vectors[3] = app.mcu.symbol("h_txdone");
    return app;
}

enum class Path { Linked, Ep, Mcu };

const char *
pathName(Path path)
{
    switch (path) {
      case Path::Linked: return "linked";
      case Path::Ep: return "EP";
      case Path::Mcu: return "uC";
    }
    return "?";
}

struct PathResult
{
    std::uint64_t events = 0;      ///< sensor actions completed (frames)
    double engineWatts = 0.0;      ///< servicing engines (EP + uC + fabric)
    double engineAlpha = 0.0;      ///< busiest servicing engine's duty
    double nodeEnergy = 0.0;       ///< whole-node ledger, joules
    double seconds = 0.0;
};

PathResult
runPath(Path path, double seconds)
{
    const std::uint32_t period = 1000; // 100 Hz at the 100 kHz system clock

    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 200; };
    SensorNode node(simulation, "node", cfg);

    apps::AppParams params;
    params.samplePeriodCycles = period;
    switch (path) {
      case Path::Linked:
        apps::install(node, apps::buildApp1(params));
        node.fabric().configure(sensingChain(), 0);
        break;
      case Path::Ep:
        apps::install(node, apps::buildApp1(params));
        break;
      case Path::Mcu:
        apps::install(node, buildMcuApp(period));
        break;
    }
    simulation.runForSeconds(seconds);

    PathResult r;
    r.events = node.radio().framesSent();
    r.seconds = seconds;
    r.nodeEnergy = node.totalEnergyJoules();
    r.engineWatts = node.ep().averagePowerWatts() +
                    node.micro().averagePowerWatts() +
                    node.fabric().averagePowerWatts();
    switch (path) {
      case Path::Linked: r.engineAlpha = node.fabric().utilization(); break;
      case Path::Ep: r.engineAlpha = node.ep().utilization(); break;
      case Path::Mcu: r.engineAlpha = node.micro().utilization(); break;
    }
    if (path == Path::Linked && node.ep().isrsExecuted() != 0) {
        std::fprintf(stderr, "FAIL: linked path woke the EP %llu times\n",
                     static_cast<unsigned long long>(node.ep().isrsExecuted()));
        std::exit(1);
    }
    return r;
}

// ---------------------------------------------------------------------------
// Network scale: linked vs EP servicing under the K = 1/2/4 oracle
// ---------------------------------------------------------------------------

scenario::Scenario
networkScenario(unsigned count, unsigned threads, double seconds, bool linked)
{
    scenario::Scenario sc;
    sc.name = linked ? "fabric-linked" : "fabric-unlinked";
    sc.seconds = seconds;
    sc.seed = 11;
    sc.threads = threads;
    sc.nodes.count = count;
    sc.nodes.app = "app1";
    sc.nodes.period = 2000;
    sc.nodes.signal = "const:200";
    if (linked) {
        sc.events.emplace();
        sc.events->links = sensingChain();
    }
    return sc;
}

Network::Counters
runNetwork(const scenario::Scenario &sc, std::string *stats)
{
    scenario::Lowered low = scenario::lower(sc);
    Network network(low.spec);
    network.runForSeconds(low.seconds);
    if (stats) {
        std::ostringstream os;
        network.dumpStats(os);
        *stats = os.str();
    }
    return network.counters();
}

/** Run @p threads_list and insist every run is byte-identical to K=1. */
Network::Counters
oracle(unsigned count, double seconds, bool linked,
       const std::vector<unsigned> &threads_list)
{
    std::string base_stats;
    Network::Counters base = runNetwork(
        networkScenario(count, threads_list.front(), seconds, linked),
        &base_stats);
    for (std::size_t i = 1; i < threads_list.size(); ++i) {
        std::string stats;
        Network::Counters c = runNetwork(
            networkScenario(count, threads_list[i], seconds, linked),
            &stats);
        if (!(c == base) || stats != base_stats) {
            std::fprintf(stderr,
                         "FAIL: %s network diverged at K=%u "
                         "(counters %s, stats %s)\n",
                         linked ? "linked" : "unlinked", threads_list[i],
                         c == base ? "equal" : "differ",
                         stats == base_stats ? "identical" : "differ");
            std::exit(1);
        }
    }
    return base;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    for (int i = 1; i < argc; ++i)
        smoke = smoke || std::strcmp(argv[i], "--smoke") == 0;

    bench::banner("Event fabric: energy per serviced event, "
                  "linked vs EP vs uC");

    const double seconds = smoke ? 0.5 : 2.0;
    std::vector<PathResult> results;
    for (Path path : {Path::Linked, Path::Ep, Path::Mcu})
        results.push_back(runPath(path, seconds));

    std::printf("%-10s %8s %14s %14s %12s\n", "path", "events",
                "engine/event", "node/event", "engine a");
    bench::rule();
    Path paths[] = {Path::Linked, Path::Ep, Path::Mcu};
    for (std::size_t i = 0; i < results.size(); ++i) {
        const PathResult &r = results[i];
        double engine_energy = r.engineWatts * r.seconds;
        std::printf("%-10s %8llu %13.1f nJ %13.1f nJ %12.2e\n",
                    pathName(paths[i]),
                    static_cast<unsigned long long>(r.events),
                    1e9 * engine_energy / r.events,
                    1e9 * r.nodeEnergy / r.events, r.engineAlpha);
    }
    bench::rule();
    std::printf("engine = EP + uC + fabric power over the run; the linked "
                "path is gated on the EP\nnever waking.\n");

    // Equation 1 projection: each path's measured activity factor at each
    // technology node's min-feasible operating point (§5.1 methodology).
    std::printf("\nEq.1 projected servicing energy per event "
                "(energy = P(alpha) x period):\n");
    std::printf("%-8s %8s", "node", "Vdd(V)");
    for (Path path : paths)
        std::printf(" %12s", pathName(path));
    std::printf("\n");
    bench::rule();
    tech::Eq1Model eq1;
    unsigned tech_rows = 0;
    for (const tech::TechNode &tn : tech::standardNodes()) {
        tech::RingOscillator osc(tn);
        auto vdd = eq1.minFeasibleVdd(osc, 25.0);
        if (!vdd)
            continue;
        tech::OscillatorPoint point = osc.evaluate(*vdd, 25.0);
        std::printf("%-8s %8.3f", tn.name.c_str(), *vdd);
        for (const PathResult &r : results) {
            double watts = eq1.totalPower(r.engineAlpha, point);
            std::printf(" %9.3g pJ", 1e12 * watts * r.seconds / r.events);
        }
        std::printf("\n");
        ++tech_rows;
    }
    bench::rule();
    if (tech_rows < 3) {
        std::fprintf(stderr, "FAIL: only %u feasible technology nodes\n",
                     tech_rows);
        return 1;
    }

    // --- network scale under the oracle ----------------------------------
    const unsigned count = smoke ? 64 : 256;
    const double net_seconds = smoke ? 0.15 : 0.3;
    const std::vector<unsigned> threads_list =
        smoke ? std::vector<unsigned>{1, 2} : std::vector<unsigned>{1, 2, 4};

    bench::banner(sim::csprintf("%u-node network: linked vs EP servicing "
                                "(oracle: K = 1/2%s byte-identical)",
                                count, smoke ? "" : "/4"));

    Network::Counters linked =
        oracle(count, net_seconds, true, threads_list);
    Network::Counters unlinked =
        oracle(count, net_seconds, false, threads_list);

    auto per_action = [](const Network::Counters &c) {
        return static_cast<double>(c.eventsProcessed) /
               static_cast<double>(c.framesSent ? c.framesSent : 1);
    };
    std::printf("%-26s %14s %14s\n", "", "linked", "EP");
    bench::rule();
    std::printf("%-26s %14llu %14llu\n", "frames sent",
                static_cast<unsigned long long>(linked.framesSent),
                static_cast<unsigned long long>(unlinked.framesSent));
    std::printf("%-26s %14llu %14llu\n", "kernel events",
                static_cast<unsigned long long>(linked.eventsProcessed),
                static_cast<unsigned long long>(unlinked.eventsProcessed));
    std::printf("%-26s %14.1f %14.1f\n", "events per sensor action",
                per_action(linked), per_action(unlinked));
    std::printf("%-26s %14llu %14llu\n", "EP ISRs",
                static_cast<unsigned long long>(linked.epIsrs),
                static_cast<unsigned long long>(unlinked.epIsrs));
    std::printf("%-26s %14llu %14llu\n", "fabric linked",
                static_cast<unsigned long long>(linked.fabricLinked),
                static_cast<unsigned long long>(unlinked.fabricLinked));
    bench::rule();

    if (linked.fabricLinked == 0 ||
        per_action(linked) >= per_action(unlinked)) {
        std::fprintf(stderr, "FAIL: linked network did not reduce events "
                             "per sensor action\n");
        return 1;
    }
    std::printf("oracle: PASS (both configurations byte-identical across "
                "thread counts)\n");
    return 0;
}
