/**
 * @file
 * Ablation: remove the event processor's role and let the general-purpose
 * microcontroller handle every regular event (the paper's critique of
 * SNAP-style designs, §2: the primary computing engine stays powered and
 * does all the work). The EP degenerates into an interrupt dispatcher
 * whose every ISR is a single WAKEUP; the uC performs the sampling and
 * packet staging over the byte-serial bus.
 *
 * Reported: send-path cycles and node power at a moderate duty cycle,
 * versus the real architecture.
 */

#include <cstdio>

#include "bench_util.hh"
#include "compare/fig6.hh"
#include "compare/table4.hh"
#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "sim/simulation.hh"

namespace {

using namespace ulp;
using namespace ulp::core;

/** Build the uC-does-everything variant of application v1. */
apps::NodeApp
buildNoEpApp(std::uint32_t period_cycles)
{
    apps::NodeApp app;
    app.name = "ablation-no-ep";

    // The EP only dispatches: every event wakes the microcontroller.
    app.ep = epAssemble(R"(
timer_isr:
    WAKEUP 1
txready_isr:
    WAKEUP 2
txdone_isr:
    WAKEUP 3
.isr Timer0, timer_isr
.isr MsgTxReady, txready_isr
.isr RadioTxDone, txdone_isr
)");

    std::string mc = sim::csprintf(
        ".equ MCU_CODE, %u\n"
        ".equ P_PERIOD_HI, %u\n"
        ".equ P_PERIOD_LO, %u\n",
        map::mcuCodeBase, (period_cycles >> 8) & 0xFF,
        period_cycles & 0xFF);
    mc += R"(
.org MCU_CODE
init:
    LDI r0, 1
    STS MSG_PAYLOAD_LEN, r0
    LDI r0, P_PERIOD_HI
    STS TIMER0_LOADHI, r0
    LDI r0, P_PERIOD_LO
    STS TIMER0_LOADLO, r0
    LDI r0, 3
    STS TIMER0_CTRL, r0
    SLEEP

; sample and stage the payload in software
h_timer:
    LDS r0, SENSOR_DATA
    STS MSG_PAYLOAD, r0
    LDI r0, 1
    STS MSG_CTRL, r0
    SLEEP

; move the prepared frame to the radio in software
h_txready:
    LDP p1, MSG_OUTBUF
    LDP p2, RADIO_TXFIFO
    LDI r8, 12
h_cp:
    LDX r0, p1
    STX p2, r0
    INCP p1
    INCP p2
    DEC r8
    JNZ h_cp
    LDI r0, 12
    STS RADIO_TXLEN, r0
    LDI r0, 1
    STS RADIO_CTRL, r0
    SLEEP

h_txdone:
    SLEEP
)";
    app.mcu = mcu::assemble(mc, epDefaultSymbols());
    app.initEntry = app.mcu.symbol("init");
    app.vectors[1] = app.mcu.symbol("h_timer");
    app.vectors[2] = app.mcu.symbol("h_txready");
    app.vectors[3] = app.mcu.symbol("h_txdone");
    return app;
}

struct Result
{
    std::uint64_t sendCycles;
    double totalWatts;
    double mcuWatts;
};

Result
runNoEp(double duty)
{
    double rate = 800.0 * duty;
    auto period = static_cast<std::uint32_t>(
        std::max(200.0, 100'000.0 / rate));

    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 200; };
    SensorNode node(simulation, "node", cfg);
    node.probes().setKeepHistory(true);
    apps::install(node, buildNoEpApp(period));
    simulation.runForSeconds(4.0);

    // Last complete sample: timer alarm -> TX command.
    const auto &alarms = node.probes().ticks(Probe::TimerAlarm);
    const auto &cmds = node.probes().ticks(Probe::RadioTxCmd);
    std::uint64_t cycles = 0;
    if (!alarms.empty() && !cmds.empty()) {
        sim::Tick end = cmds.back();
        sim::Tick start = 0;
        for (sim::Tick t : alarms) {
            if (t <= end)
                start = t;
        }
        cycles = node.cyclesBetween(start, end);
    }
    return {cycles, node.totalAverageWatts(),
            node.micro().averagePowerWatts()};
}

} // namespace

int
main()
{
    bench::banner("Ablation: no event processor (SNAP-style: the uC "
                  "handles all regular events)");

    Result no_ep = runNoEp(0.05);
    std::uint64_t with_ep_cycles = compare::oursSendPathCycles(false);
    compare::Fig6Point with_ep = compare::runFig6Point(0.05, 4.0);

    std::printf("%-34s %14s %14s\n", "", "with EP", "uC-only");
    bench::rule();
    std::printf("%-34s %14llu %14llu\n", "Send path (cycles)",
                static_cast<unsigned long long>(with_ep_cycles),
                static_cast<unsigned long long>(no_ep.sendCycles));
    std::printf("%-34s %14s %14s\n", "Node power @ duty 0.05",
                bench::fmtWatts(with_ep.totalWatts).c_str(),
                bench::fmtWatts(no_ep.totalWatts).c_str());
    std::printf("%-34s %14s %14s\n", "  of which microcontroller",
                bench::fmtWatts(with_ep.mcuWatts).c_str(),
                bench::fmtWatts(no_ep.mcuWatts).c_str());
    bench::rule();
    std::printf("The event-driven fabric both shortens the event (fewer "
                "cycles awake) and moves the\nwork onto blocks an order of "
                "magnitude cheaper than the general-purpose core.\n");
    return 0;
}
