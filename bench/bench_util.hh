/**
 * @file
 * Shared formatting for the reproduction benches: headers, rule lines,
 * engineering-notation power values, and paper-vs-measured deltas.
 */

#ifndef ULP_BENCH_BENCH_UTIL_HH
#define ULP_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <string>

namespace ulp::bench {

inline void
banner(const std::string &title)
{
    std::printf("\n================================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================================\n");
}

inline void
rule()
{
    std::printf("--------------------------------------------------------------------------------\n");
}

/** Format watts with an engineering prefix (pW..mW). */
inline std::string
fmtWatts(double watts)
{
    char buf[64];
    double a = std::fabs(watts);
    if (a >= 1e-3)
        std::snprintf(buf, sizeof(buf), "%8.3f mW", watts * 1e3);
    else if (a >= 1e-6)
        std::snprintf(buf, sizeof(buf), "%8.3f uW", watts * 1e6);
    else if (a >= 1e-9)
        std::snprintf(buf, sizeof(buf), "%8.3f nW", watts * 1e9);
    else
        std::snprintf(buf, sizeof(buf), "%8.3f pW", watts * 1e12);
    return buf;
}

/** Percentage delta of measured vs paper ("n/a" when no reference). */
inline std::string
fmtDelta(double measured, double paper)
{
    if (paper == 0.0)
        return "   n/a";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%+5.1f%%",
                  100.0 * (measured - paper) / paper);
    return buf;
}

} // namespace ulp::bench

#endif // ULP_BENCH_BENCH_UTIL_HH
