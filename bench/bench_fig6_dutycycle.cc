/**
 * @file
 * Reproduces Figure 6: estimated node power versus duty cycle for the
 * sample-filter-transmit application (duty 1.0 ~ 800 tasks/s), with
 * per-component series, measured from component utilizations exactly as
 * §6.3 prescribes. Also reproduces the in-text comparisons: the Atmel
 * curve ("a little over two orders of magnitude higher"), the reference
 * deployments' duty cycles (volcano 0.12, GDI ~0.0001), and the MSP430
 * 113-192 uW point at 0.1 utilization.
 *
 * Part two (Figure 6b) re-runs the duty-cycle idea at the network
 * level: a 5-node single-hop star with a CC2420-class radio power
 * model, under always-awake CSMA, light sleep, deep sleep, and the
 * beacon-enabled duty-cycled MAC across beacon orders. The
 * headline metric is energy per delivered payload bit at the sink,
 * which must fall as the beacon order (hence the radio sleep fraction)
 * rises — the qualitative trend of Bougard et al.'s 802.15.4
 * energy-efficiency analysis.
 */

#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "compare/fig6.hh"
#include "core/network.hh"
#include "net/frame.hh"
#include "scenario/lower.hh"
#include "scenario/scenario.hh"
#include "sim/logging.hh"
#include "sleep/controller.hh"

namespace {

using namespace ulp;

/** CC2420-class transceiver draw: ~35 mW TX, ~33.8 mW RX listen, a few
 *  uW powered down. The paper excludes radio power (table5::excluded);
 *  this study is exactly about what the sleep policies do to it. */
constexpr power::PowerModel cc2420Radio{35e-3, 33.8e-3, 3e-6};

struct NetPoint
{
    std::string label;
    std::uint64_t delivered = 0; ///< frames locally delivered at the sink
    double totalJoules = 0.0;    ///< whole-network energy over the run
    double uJPerBit = 0.0;       ///< energy per delivered payload bit
};

/**
 * One 5-node single-hop star, like Bougard et al.'s analysis: every
 * device hears the coordinator/sink, so beacon sync (and with it the
 * radio duty cycle) is a property of the MAC, not of the topology.
 * @p app_period_cycles sets the offered load: the sleep-policy rows use
 * fast sampling (plenty of in-window traffic), while the beacon-order
 * sweep samples slower than the largest beacon interval so the offered
 * load is identical at every BO and E/bit isolates idle listening.
 */
NetPoint
runDutyNet(const std::string &label, ulp::sleep::Policy policy,
           std::uint32_t app_period_cycles, bool beacon,
           unsigned beacon_order)
{
    constexpr double seconds = 8.0;
    scenario::Scenario sc;
    sc.name = "fig6-net";
    sc.seconds = seconds;
    sc.seed = 42;
    sc.nodes.count = 5;
    sc.nodes.app = "app3";
    sc.nodes.period = app_period_cycles;
    sc.nodes.macRetries = 3;
    sc.radio.model = scenario::RadioModel::Broadcast;
    sc.routes.sink = 0;
    // De-phase the devices: identical periods sample in lock-step and
    // every broadcast collides. A ~1% per-node period skew keeps the
    // offered load equal while spreading the transmissions out.
    for (unsigned i = 1; i < sc.nodes.count; ++i)
        sc.overrides[i].period = app_period_cycles + i * (app_period_cycles / 100 + 7);
    if (policy != ulp::sleep::Policy::None) {
        sc.sleep.emplace();
        sc.sleep->policy = policy;
        sc.sleep->period = 1.0;
        sc.sleep->on = 0.1;
    }
    if (beacon) {
        sc.mac.emplace();
        sc.mac->mode = ulp::sleep::MacMode::Beacon;
        sc.mac->beaconOrder = beacon_order;
        sc.mac->sfOrder = 2;
        sc.mac->guard = 128;
    }

    scenario::Lowered low = scenario::lower(sc);
    for (scenario::NodeSpec &node : low.spec.nodes)
        node.config.radioPower = cc2420Radio;

    core::Network network(low.spec);
    ulp::sleep::SleepController sleepCtl(network);
    network.runForSeconds(low.seconds);

    NetPoint p;
    p.label = label;
    for (const auto &[src, count] :
         network.node(0).msgProc().localDeliveriesBySource())
        p.delivered += count;
    for (unsigned i = 0; i < network.numNodes(); ++i)
        p.totalJoules += network.node(i).totalEnergyJoules();
    // app3 sample frames carry a 1-byte payload; the per-bit metric uses
    // payload bits so MAC overhead is charged to energy, not amortized.
    const double bits = static_cast<double>(p.delivered) * 8.0;
    p.uJPerBit = bits > 0.0 ? p.totalJoules * 1e6 / bits : 0.0;
    return p;
}

} // namespace

int
main()
{
    using namespace ulp;

    bench::banner("Figure 6: estimated power vs node duty cycle "
                  "(sample-filter-transmit; 1.0 ~ 800 tasks/s)");
    std::printf("%-9s %8s | %11s %11s %11s %11s %11s | %11s | %11s %8s\n",
                "duty", "rate/s", "EP", "Timer", "MsgProc", "Filter",
                "Memory", "Total", "Atmel", "ratio");
    bench::rule();

    auto points = compare::sweepFig6(compare::fig6DefaultDuties(), 2.0);
    for (const auto &p : points) {
        std::printf(
            "%-9.4g %8.1f | %11s %11s %11s %11s %11s | %11s | %11s %7.0fx\n",
            p.dutyCycle, p.sampleRateHz,
            bench::fmtWatts(p.epWatts).c_str(),
            bench::fmtWatts(p.timerWatts).c_str(),
            bench::fmtWatts(p.msgProcWatts).c_str(),
            bench::fmtWatts(p.filterWatts).c_str(),
            bench::fmtWatts(p.memoryWatts).c_str(),
            bench::fmtWatts(p.totalWatts).c_str(),
            bench::fmtWatts(p.atmelWatts).c_str(),
            p.totalWatts > 0 ? p.atmelWatts / p.totalWatts : 0.0);
    }

    bench::rule();
    std::printf("Checks against the paper:\n");
    std::printf("  - total < 25 uW at duty 1.0 and < 2 uW for duty <= "
                "0.05 ('drops below 2 uW for\n    even reasonably high "
                "sample rates')\n");
    std::printf("  - one of four timers always on: flat Timer series at "
                "~1.44 uW\n");
    std::printf("  - reference deployments: volcano duty 0.12, GDI duty "
                "~0.0001\n");

    // MSP430 point (§6.3): utilization 0.1.
    auto p01 = compare::runFig6Point(0.1, 2.0);
    std::printf("\nMSP430 at the 0.1-utilization point: %s .. %s "
                "(paper: 113-192 uW); ours: %s\n",
                bench::fmtWatts(p01.msp430LowWatts).c_str(),
                bench::fmtWatts(p01.msp430HighWatts).c_str(),
                bench::fmtWatts(p01.totalWatts).c_str());

    bench::banner("Figure 6b: sleep policy x MAC on a 5-node single-hop "
                  "star (CC2420-class radio, 8 s)");
    std::printf("%-26s %10s %12s %12s\n", "configuration", "delivered",
                "energy", "uJ/bit");
    bench::rule();

    // Sleep policies at a fast (20 ms) sample period: the node-side
    // duty cycle, with the radio's idle listening untouched by light
    // sleep and gated by deep sleep.
    sim::setQuiet(true);
    std::vector<NetPoint> policyRows;
    policyRows.push_back(runDutyNet("csma, always awake",
                                    ulp::sleep::Policy::None, 2000,
                                    false, 0));
    policyRows.push_back(runDutyNet("csma, light sleep 10%",
                                    ulp::sleep::Policy::Light, 2000,
                                    false, 0));
    policyRows.push_back(runDutyNet("csma, deep sleep 10%",
                                    ulp::sleep::Policy::Deep, 2000,
                                    false, 0));

    // The MAC duty cycle at a 1.5 s sample period (longer than the
    // largest beacon interval): offered load is constant across the BO
    // sweep, so E/bit isolates the radio's idle-listening energy.
    std::vector<NetPoint> macRows;
    macRows.push_back(runDutyNet("csma, always awake",
                                 ulp::sleep::Policy::None, 150000,
                                 false, 0));
    std::vector<double> beaconEbit;
    for (unsigned bo = 3; bo <= 6; ++bo) {
        macRows.push_back(runDutyNet(
            "beacon BO=" + std::to_string(bo) + " SO=2",
            ulp::sleep::Policy::None, 150000, true, bo));
        beaconEbit.push_back(macRows.back().uJPerBit);
    }
    sim::setQuiet(false);

    std::printf("sleep policies (app period 20 ms):\n");
    for (const NetPoint &p : policyRows) {
        std::printf("%-26s %10llu %9.1f mJ %12.1f\n", p.label.c_str(),
                    static_cast<unsigned long long>(p.delivered),
                    p.totalJoules * 1e3, p.uJPerBit);
    }
    std::printf("\nMAC duty cycle (app period 1.5 s):\n");
    for (const NetPoint &p : macRows) {
        std::printf("%-26s %10llu %9.1f mJ %12.1f\n", p.label.c_str(),
                    static_cast<unsigned long long>(p.delivered),
                    p.totalJoules * 1e3, p.uJPerBit);
    }

    bench::rule();
    bool falling = true;
    for (std::size_t i = 1; i < beaconEbit.size(); ++i)
        falling = falling && beaconEbit[i] < beaconEbit[i - 1];
    std::printf("Checks against Bougard et al. (PAPERS.md):\n");
    std::printf("  - energy per delivered bit falls as the beacon order "
                "rises (BO 3 -> 6): %s\n", falling ? "yes" : "NO");
    std::printf("  - duty-cycling the radio MAC beats always-listen "
                "CSMA on E/bit: %s\n",
                beaconEbit.back() < macRows[0].uJPerBit ? "yes" : "NO");
    std::printf("  - deep sleep gates the radio too: lowest network "
                "energy of the CSMA rows: %s\n",
                policyRows[2].totalJoules < policyRows[0].totalJoules &&
                        policyRows[2].totalJoules < policyRows[1].totalJoules
                    ? "yes" : "NO");
    return 0;
}
