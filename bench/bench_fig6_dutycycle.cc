/**
 * @file
 * Reproduces Figure 6: estimated node power versus duty cycle for the
 * sample-filter-transmit application (duty 1.0 ~ 800 tasks/s), with
 * per-component series, measured from component utilizations exactly as
 * §6.3 prescribes. Also reproduces the in-text comparisons: the Atmel
 * curve ("a little over two orders of magnitude higher"), the reference
 * deployments' duty cycles (volcano 0.12, GDI ~0.0001), and the MSP430
 * 113-192 uW point at 0.1 utilization.
 */

#include <cstdio>

#include "bench_util.hh"
#include "compare/fig6.hh"

int
main()
{
    using namespace ulp;

    bench::banner("Figure 6: estimated power vs node duty cycle "
                  "(sample-filter-transmit; 1.0 ~ 800 tasks/s)");
    std::printf("%-9s %8s | %11s %11s %11s %11s %11s | %11s | %11s %8s\n",
                "duty", "rate/s", "EP", "Timer", "MsgProc", "Filter",
                "Memory", "Total", "Atmel", "ratio");
    bench::rule();

    auto points = compare::sweepFig6(compare::fig6DefaultDuties(), 2.0);
    for (const auto &p : points) {
        std::printf(
            "%-9.4g %8.1f | %11s %11s %11s %11s %11s | %11s | %11s %7.0fx\n",
            p.dutyCycle, p.sampleRateHz,
            bench::fmtWatts(p.epWatts).c_str(),
            bench::fmtWatts(p.timerWatts).c_str(),
            bench::fmtWatts(p.msgProcWatts).c_str(),
            bench::fmtWatts(p.filterWatts).c_str(),
            bench::fmtWatts(p.memoryWatts).c_str(),
            bench::fmtWatts(p.totalWatts).c_str(),
            bench::fmtWatts(p.atmelWatts).c_str(),
            p.totalWatts > 0 ? p.atmelWatts / p.totalWatts : 0.0);
    }

    bench::rule();
    std::printf("Checks against the paper:\n");
    std::printf("  - total < 25 uW at duty 1.0 and < 2 uW for duty <= "
                "0.05 ('drops below 2 uW for\n    even reasonably high "
                "sample rates')\n");
    std::printf("  - one of four timers always on: flat Timer series at "
                "~1.44 uW\n");
    std::printf("  - reference deployments: volcano duty 0.12, GDI duty "
                "~0.0001\n");

    // MSP430 point (§6.3): utilization 0.1.
    auto p01 = compare::runFig6Point(0.1, 2.0);
    std::printf("\nMSP430 at the 0.1-utilization point: %s .. %s "
                "(paper: 113-192 uW); ours: %s\n",
                bench::fmtWatts(p01.msp430LowWatts).c_str(),
                bench::fmtWatts(p01.msp430HighWatts).c_str(),
                bench::fmtWatts(p01.totalWatts).c_str());
    return 0;
}
