/**
 * @file
 * Reproduces the §6.1.3 SNAP comparison: the blink and sense
 * microbenchmarks on our architecture and on the Mica2 baseline, against
 * the published SNAP (asynchronous event-driven processor, ASPLOS'04)
 * cycle counts. SNAP's simulation environment is not available, so its
 * column is the published constant — exactly as in the paper.
 */

#include <cstdio>

#include "bench_util.hh"
#include "compare/table4.hh"

int
main()
{
    using namespace ulp;
    namespace m = compare;

    bench::banner("SNAP comparison (published SNAP numbers; ours and Mica2 "
                  "measured)");
    std::printf("%-8s | %6s (%5s) | %6s | %6s (%5s)\n", "App", "Ours",
                "paper", "SNAP", "Mica2", "paper");
    bench::rule();

    std::uint64_t ours_blink = m::oursBlinkCycles();
    std::uint64_t ours_sense = m::oursSenseCycles();
    std::uint64_t mica_blink = m::mica2BlinkCycles();
    std::uint64_t mica_sense = m::mica2SenseCycles();

    std::printf("%-8s | %6llu (%5llu) | %6llu | %6llu (%5llu)\n", "blink",
                static_cast<unsigned long long>(ours_blink),
                static_cast<unsigned long long>(m::paperOursBlinkCycles),
                static_cast<unsigned long long>(m::snapBlinkCycles),
                static_cast<unsigned long long>(mica_blink),
                static_cast<unsigned long long>(m::paperMica2BlinkCycles));
    std::printf("%-8s | %6llu (%5llu) | %6llu | %6llu (%5llu)\n", "sense",
                static_cast<unsigned long long>(ours_sense),
                static_cast<unsigned long long>(m::paperOursSenseCycles),
                static_cast<unsigned long long>(m::snapSenseCycles),
                static_cast<unsigned long long>(mica_sense),
                static_cast<unsigned long long>(m::paperMica2SenseCycles));

    bench::rule();
    std::printf("Expected ordering (paper): ours < SNAP < Mica2 on both "
                "microbenchmarks.\n");
    bool ok = ours_blink < m::snapBlinkCycles &&
              m::snapBlinkCycles < mica_blink &&
              ours_sense < m::snapSenseCycles &&
              m::snapSenseCycles < mica_sense;
    std::printf("Ordering holds: %s\n", ok ? "yes" : "NO");
    return ok ? 0 : 1;
}
