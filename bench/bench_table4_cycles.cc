/**
 * @file
 * Reproduces Table 4: cycle counts of the staged test application on our
 * architecture versus the Mica2 (MiniOS/TinyOS-like) baseline, plus the
 * §6.1.3 code-size comparison and the ~800 samples/s maximum-rate
 * headline. Both columns are *measured* from the two full-system
 * simulators; the paper's values are printed for reference.
 *
 * Note: the transcript of the paper garbles the "Threshold change" row,
 * so it carries no reference values (see DESIGN.md).
 */

#include <cstdio>

#include "bench_util.hh"
#include "compare/fig6.hh"
#include "compare/table4.hh"

int
main()
{
    using namespace ulp;

    bench::banner("Table 4: cycle counts, our architecture vs Mica2 "
                  "(TinyOS-like baseline)");
    std::printf("%-30s | %7s %7s %7s | %6s %6s %6s | %8s (%6s)\n",
                "Measurement", "Mica2", "paper", "delta", "Ours", "paper",
                "delta", "Speedup", "paper");
    bench::rule();

    for (const auto &row : compare::table4()) {
        double paper_speedup =
            row.paperOurs > 0 ? row.paperMica2 / row.paperOurs : 0.0;
        std::printf("%-30s | %7llu %7.0f %7s | %6llu %6.0f %6s | %8.2f "
                    "(%6.2f)\n",
                    row.name.c_str(),
                    static_cast<unsigned long long>(row.mica2Cycles),
                    row.paperMica2,
                    bench::fmtDelta(static_cast<double>(row.mica2Cycles),
                                    row.paperMica2)
                        .c_str(),
                    static_cast<unsigned long long>(row.ourCycles),
                    row.paperOurs,
                    bench::fmtDelta(static_cast<double>(row.ourCycles),
                                    row.paperOurs)
                        .c_str(),
                    row.speedup(), paper_speedup);
    }

    bench::rule();
    std::printf("Code size (application v4):\n");
    std::printf("  Mica2 image: %6zu bytes measured (paper: %zu bytes for "
                "the full TinyOS image\n"
                "               including the software radio stack, which "
                "this baseline models as\n"
                "               radio hardware and therefore does not "
                "count)\n",
                compare::mica2FootprintBytes(),
                compare::paperMica2FootprintBytes);
    std::printf("  Our system:  %6zu bytes measured (paper: %zu bytes)\n",
                compare::oursFootprintBytes(),
                compare::paperOursFootprintBytes);

    bench::rule();
    std::printf("Maximum sample rate at 100 kHz (sample-filter-transmit): "
                "%.0f samples/s (paper: ~800)\n",
                compare::maxSampleRateHz());
    return 0;
}
