/**
 * @file
 * Ablation: disable Vdd gating (SWITCHOFF becomes a no-op; every
 * component idles instead of being supply-gated). Quantifies what the
 * paper's fine-grain power management buys at the idle floor — the regime
 * that dominates multi-year monitoring deployments (§4.2.6).
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "sim/simulation.hh"

namespace {

using namespace ulp;
using namespace ulp::core;

double
runNode(bool gating_disabled, double duty)
{
    double rate = 800.0 * duty;
    auto period = static_cast<std::uint32_t>(
        std::max(125.0, 100'000.0 / rate));

    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 200; };
    cfg.gatingDisabled = gating_disabled;
    SensorNode node(simulation, "node", cfg);

    apps::AppParams params;
    params.samplePeriodCycles = period;
    params.threshold = 0;
    apps::install(node, apps::buildApp2(params));

    double seconds = std::max(4.0, 10.0 * period / 100'000.0);
    simulation.runForSeconds(seconds);
    return node.totalAverageWatts();
}

} // namespace

int
main()
{
    bench::banner("Ablation: Vdd gating disabled (components idle instead "
                  "of gating off)");
    std::printf("%-10s %14s %14s %10s\n", "duty", "gated", "no gating",
                "overhead");
    bench::rule();
    for (double duty : {0.1, 0.01, 1e-3, 1e-4}) {
        double gated = runNode(false, duty);
        double ungated = runNode(true, duty);
        std::printf("%-10.4g %14s %14s %9.1f%%\n", duty,
                    bench::fmtWatts(gated).c_str(),
                    bench::fmtWatts(ungated).c_str(),
                    100.0 * (ungated - gated) / gated);
    }
    bench::rule();
    std::printf(
        "Notes: at the paper's operating point the Table 5 idle figures "
        "are already small\n(0.25 um leakage), so gating buys tens of nW "
        "here — but it is what keeps the idle\nfloor at ~0.07 uW, and in "
        "the §5.1 deep-submicron nodes the same ungated leakage\ngrows by "
        "1-2 orders of magnitude (see bench_fig3_technology).\n");
    return 0;
}
