/**
 * @file
 * Multi-hop scaling sweep: packets delivered at the sink and energy per
 * delivered payload bit as the network grows (64 / 256 / 1024 / 10000
 * nodes on a constant-density grid; the 10k point exercises the pooled
 * frame allocator and SoA node state at memory scale) and as the node
 * density changes (grid pitch
 * sweep at 64 nodes, which moves the hop count of the far corner).
 *
 * Every configuration runs through the scenario engine on the spatial
 * radio model with BFS routes toward a corner sink, and every scale is
 * gated on the cross-thread-count oracle: the merged statistics of the
 * 2- and 4-shard runs must be byte-identical to the sequential run
 * before the row is reported.
 *
 * Modes:
 *   (none)         the full table on stdout
 *   --smoke        one short gated run at 64 nodes (CI under sanitizers)
 *   --json[=PATH]  machine-readable BENCH_multihop.json snapshot
 *   --check[=PATH] perf-regression smoke: re-measure the small rows and
 *                  compare events/host-second against the committed
 *                  snapshot with a loose ref/4 band (Release CI only —
 *                  a sanitizer or Debug build is legitimately slower)
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/network.hh"
#include "scenario/lower.hh"
#include "scenario/scenario.hh"
#include "sim/logging.hh"

using namespace ulp;

namespace {

/** Payload bits per delivered sample frame (1 data byte). */
constexpr double payloadBits = 8.0;

scenario::Scenario
gridScenario(unsigned nodes, unsigned threads, double spacing,
             double seconds)
{
    scenario::Scenario sc;
    sc.name = "bench-multihop";
    sc.seconds = seconds;
    sc.seed = 42;
    sc.threads = threads;
    sc.nodes.count = nodes;
    sc.nodes.app = "app3";
    sc.nodes.period = 2000;
    sc.nodes.placement = scenario::Placement::Grid;
    sc.nodes.spacing = spacing;
    sc.radio.model = scenario::RadioModel::Spatial;
    sc.radio.spatial.pathLossExponent = 2.8;
    sc.radio.spatial.sensitivityDbm = -90.0;
    sc.routes.sink = 0;
    return sc;
}

struct Row
{
    unsigned nodes = 0;
    double spacing = 0.0;
    double seconds = 0.0;
    double minProb = 1.0;
    unsigned maxDepth = 0;
    std::uint64_t framesSent = 0;
    std::uint64_t sinkPackets = 0;
    std::size_t origins = 0;
    double totalEnergyJ = 0.0;
    double energyPerBitJ = 0.0; ///< network energy per delivered payload bit
    double eventsPerHostSec = 0.0; ///< K = 1 run, includes lowering amortized out
    bool oracleOk = false;      ///< K = 2/4 stats byte-identical to K = 1
};

struct RunResult
{
    core::Network::Counters counters;
    std::uint64_t sinkPackets = 0;
    std::size_t origins = 0;
    double totalEnergyJ = 0.0;
    double hostSeconds = 0.0; ///< wall-clock time of the run itself
    std::string stats;
};

RunResult
run(const scenario::Scenario &sc)
{
    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    const auto start = std::chrono::steady_clock::now();
    network.runForSeconds(low.seconds);
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    RunResult r;
    r.hostSeconds = elapsed;
    r.counters = network.counters();
    const core::MessageProcessor &mp = network.node(*low.sink).msgProc();
    r.sinkPackets = mp.localDeliveries();
    r.origins = mp.localDeliveriesBySource().size();
    for (unsigned i = 0; i < network.numNodes(); ++i)
        r.totalEnergyJ += network.node(i).totalAverageWatts() * low.seconds;
    std::ostringstream os;
    network.dumpStats(os);
    r.stats = os.str();
    return r;
}

Row
sweepPoint(unsigned nodes, double spacing, double seconds,
           double min_prob = 1.0, unsigned max_oracle_threads = 4)
{
    scenario::Scenario sc = gridScenario(nodes, 1, spacing, seconds);
    sc.routes.minProb = min_prob;
    RunResult k1 = run(sc);

    Row row;
    row.nodes = nodes;
    row.spacing = spacing;
    row.seconds = seconds;
    row.minProb = min_prob;
    row.maxDepth = scenario::lower(sc).maxDepth();
    row.framesSent = k1.counters.framesSent;
    row.sinkPackets = k1.sinkPackets;
    row.origins = k1.origins;
    row.totalEnergyJ = k1.totalEnergyJ;
    row.energyPerBitJ =
        k1.sinkPackets
            ? k1.totalEnergyJ / (static_cast<double>(k1.sinkPackets) *
                                 payloadBits)
            : 0.0;
    row.eventsPerHostSec =
        k1.hostSeconds > 0.0
            ? static_cast<double>(k1.counters.eventsProcessed) /
                  k1.hostSeconds
            : 0.0;

    // The determinism gate: the same workload on 2 and 4 shards must
    // merge to the identical counters and the identical stats tree.
    row.oracleOk = true;
    for (unsigned threads : {2u, 4u}) {
        if (threads > max_oracle_threads)
            continue;
        sc.threads = threads;
        RunResult kn = run(sc);
        if (!(kn.counters == k1.counters) || kn.stats != k1.stats ||
            kn.sinkPackets != k1.sinkPackets) {
            row.oracleOk = false;
            std::fprintf(stderr,
                         "bench_multihop: %u nodes: threads=%u diverged "
                         "from the sequential run\n",
                         nodes, threads);
        }
    }
    return row;
}

void
printTable(const std::vector<Row> &rows)
{
    std::printf("%7s %8s %6s %6s %9s %9s %8s %13s %7s\n", "nodes",
                "spacing", "hops", "sink", "sent", "packets", "origins",
                "energy/bit", "oracle");
    for (const Row &r : rows) {
        std::printf("%7u %7gm %6u %6s %9llu %9llu %8zu %10.3f nJ %7s\n",
                    r.nodes, r.spacing, r.maxDepth, "0",
                    static_cast<unsigned long long>(r.framesSent),
                    static_cast<unsigned long long>(r.sinkPackets),
                    r.origins, r.energyPerBitJ * 1e9,
                    r.oracleOk ? "ok" : "FAIL");
    }
}

int
writeJson(const std::vector<Row> &rows, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_multihop: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"multihop\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"nodes\": %u, \"spacing_m\": %g, \"seconds\": %g, "
            "\"min_prob\": %g, "
            "\"max_depth\": %u, \"frames_sent\": %llu, "
            "\"sink_packets\": %llu, \"origins\": %zu, "
            "\"total_energy_j\": %.9g, \"energy_per_bit_j\": %.9g, "
            "\"events_per_host_second\": %.9g, "
            "\"threads_oracle_ok\": %s}%s\n",
            r.nodes, r.spacing, r.seconds, r.minProb, r.maxDepth,
            static_cast<unsigned long long>(r.framesSent),
            static_cast<unsigned long long>(r.sinkPackets), r.origins,
            r.totalEnergyJ, r.energyPerBitJ, r.eventsPerHostSec,
            r.oracleOk ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

/**
 * Perf-regression smoke (CI), mirroring bench_sim_throughput --check:
 * re-measure the small rows of the committed snapshot and fail only
 * below ref/4 — the CI host differs from the host that wrote the
 * snapshot, so the gate catches order-of-magnitude scenario-path
 * regressions, not drift. Rows above the node cap are skipped (and
 * said so): re-lowering a 10k-node grid is a bench, not a smoke.
 */
int
runCheck(const std::string &path)
{
    constexpr unsigned maxCheckNodes = 256;

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "check: cannot read %s\n", path.c_str());
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("check: host has %u core(s), %s build; reference %s\n",
                cores, ULP_BUILD_TYPE, path.c_str());

    int failures = 0;
    unsigned rows = 0;
    std::size_t pos = 0;
    while (true) {
        const std::size_t n = text.find("\"nodes\": ", pos);
        if (n == std::string::npos)
            break;
        const unsigned nodes = static_cast<unsigned>(
            std::strtoul(text.c_str() + n + 9, nullptr, 10));
        const std::size_t sp = text.find("\"spacing_m\": ", n);
        const std::size_t se = text.find("\"seconds\": ", n);
        const std::size_t mp = text.find("\"min_prob\": ", n);
        const std::size_t ev = text.find("\"events_per_host_second\": ", n);
        if (sp == std::string::npos || se == std::string::npos ||
            mp == std::string::npos || ev == std::string::npos)
            break;
        const double spacing = std::strtod(text.c_str() + sp + 13, nullptr);
        const double seconds = std::strtod(text.c_str() + se + 11, nullptr);
        const double minProb = std::strtod(text.c_str() + mp + 12, nullptr);
        const double ref = std::strtod(text.c_str() + ev + 26, nullptr);
        pos = ev + 26;

        if (nodes > maxCheckNodes) {
            std::printf("check: %4u nodes: skipped (> %u-node smoke cap)\n",
                        nodes, maxCheckNodes);
            continue;
        }
        ++rows;

        // Same workload as the committed row, best of two runs: the
        // first run eats the cold caches.
        scenario::Scenario sc = gridScenario(nodes, 1, spacing, seconds);
        sc.routes.minProb = minProb;
        double measured = 0.0;
        for (int attempt = 0; attempt < 2; ++attempt) {
            RunResult r = run(sc);
            if (r.hostSeconds > 0.0)
                measured = std::max(
                    measured,
                    static_cast<double>(r.counters.eventsProcessed) /
                        r.hostSeconds);
        }
        const bool ok = ref <= 0.0 || measured >= ref / 4.0;
        std::printf("check: %4u nodes %5gm: %8.2f Mev/s vs committed "
                    "%8.2f Mev/s -> %s\n",
                    nodes, spacing, measured / 1e6, ref / 1e6,
                    ok ? "ok" : "REGRESSION");
        if (!ok)
            ++failures;
    }
    if (rows == 0) {
        std::fprintf(stderr, "check: no rows parsed from %s\n",
                     path.c_str());
        return 1;
    }
    if (failures) {
        std::fprintf(stderr, "check: %d of %u rows below the ref/4 band\n",
                     failures, rows);
        return 1;
    }
    std::printf("check OK: all %u rows within band\n", rows);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool json = false;
    bool check = false;
    std::string jsonPath = "BENCH_multihop.json";
    std::string checkPath = "BENCH_multihop.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json = true;
            jsonPath = argv[i] + 7;
        } else if (std::strcmp(argv[i], "--check") == 0) {
            check = true;
        } else if (std::strncmp(argv[i], "--check=", 8) == 0) {
            check = true;
            checkPath = argv[i] + 8;
        } else {
            std::fprintf(stderr, "usage: bench_multihop [--smoke] "
                                 "[--json[=PATH]] [--check[=PATH]]\n");
            return 2;
        }
    }

    sim::setQuiet(true); // keep the table clean of msgProc-busy warnings

    if (check) {
        try {
            return runCheck(checkPath);
        } catch (const sim::SimError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }

    try {
        std::vector<Row> rows;
        if (smoke) {
            rows.push_back(sweepPoint(64, 40.0, 0.4));
        } else {
            // Scale sweep at constant density, then a density sweep at 64
            // nodes (a wider pitch stretches the route tree: more hops).
            rows.push_back(sweepPoint(64, 40.0, 2.0));
            rows.push_back(sweepPoint(256, 40.0, 1.0));
            rows.push_back(sweepPoint(1024, 40.0, 0.5));
            // 10k nodes: the memory-scaling point (pooled frames + SoA
            // node state). A short window and a K<=2 oracle keep the
            // row affordable; the far corner is ~200 hops out so only
            // the sink's neighborhood delivers within the window.
            rows.push_back(sweepPoint(10000, 40.0, 0.05, 1.0, 2));
            rows.push_back(sweepPoint(64, 30.0, 2.0));
            // 55 m pitch: the grid links fade (delivery probability
            // ~0.4), so routing must accept lossy hops.
            rows.push_back(sweepPoint(64, 55.0, 2.0, 0.4));
        }

        printTable(rows);
        bool ok = true;
        for (const Row &r : rows) {
            ok = ok && r.oracleOk && r.sinkPackets > 0;
            if (r.sinkPackets == 0) {
                std::fprintf(stderr,
                             "bench_multihop: %u nodes delivered nothing "
                             "to the sink\n",
                             r.nodes);
            }
        }
        if (json && ok)
            return writeJson(rows, jsonPath);
        return ok ? 0 : 1;
    } catch (const sim::SimError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
