/**
 * @file
 * Host-side performance of the simulators (google-benchmark): how fast a
 * simulated second runs for the event-driven node, for the saturated node,
 * and for the Mica2 baseline (which executes every CPU instruction), plus
 * the simulation-kernel fast path itself:
 *
 *  - BM_EventQueuePopulated: the indexed d-ary heap under a realistic
 *    schedule/reschedule/deschedule mix at several resident depths;
 *  - BM_EventQueueSetBaseline: the same op mix against a reference
 *    std::set red-black-tree queue (the pre-heap implementation), so the
 *    speedup is tracked release over release;
 *  - BM_NetworkScale: N complete sensor nodes (1/8/32/64) sharing one
 *    broadcast Channel, all sampling and transmitting.
 *
 * Special modes (no google-benchmark):
 *  --json[=PATH]  run the kernel benchmarks and write a machine-readable
 *                 BENCH_simkernel.json snapshot (default ./BENCH_simkernel.json),
 *                 including host metadata, a sharded-kernel thread sweep
 *                 (broadcast and spatial scenarios, every row flagged
 *                 `oversubscribed` when threads exceed host cores), and a
 *                 64-node two-run determinism check;
 *  --check[=PATH] perf-regression smoke: re-measure the network_scale
 *                 rows and fail if throughput fell below a quarter of the
 *                 committed snapshot's (tolerance band for differing CI
 *                 hosts); prints the host core count;
 *  --smoke        one short N-node run at each scale + the determinism
 *                 check; asserts completion, not speed (CI under ASan).
 *                 Oversubscribed thread counts run correctness-only and
 *                 are labelled as such — no timing is recorded for them.
 *  --threads=K    shard the --smoke networks across K worker threads and
 *                 additionally assert the stats match the sequential run
 *                 (CI under TSan).
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "baseline/mica2_platform.hh"
#include "baseline/minios.hh"
#include "core/apps.hh"
#include "core/network.hh"
#include "core/sensor_node.hh"
#include "net/channel.hh"
#include "scenario/spec.hh"
#include "sim/simulation.hh"

#ifndef ULP_BUILD_TYPE
#define ULP_BUILD_TYPE "unspecified"
#endif

using namespace ulp;
using namespace ulp::core;

namespace {

// --------------------------------------------------------------------------
// Kernel microbenchmark: a populated queue under a steady-state op mix.
// --------------------------------------------------------------------------

/** Deterministic 64-bit LCG so the op mix is identical across queues. */
struct Lcg
{
    std::uint64_t state = 0x9E3779B97F4A7C15ull;
    std::uint64_t
    next()
    {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return state >> 33;
    }
};

/**
 * Reference implementation: the std::set<Event*> red-black tree the
 * kernel used before the indexed heap, kept here as the comparison
 * baseline for BENCH_simkernel.json.
 */
class SetQueue
{
  public:
    struct Ev
    {
        sim::Tick when = 0;
        std::uint64_t seq = 0;
        bool scheduled = false;
    };

    void
    schedule(Ev *e, sim::Tick when)
    {
        e->when = when;
        e->seq = nextSeq++;
        e->scheduled = true;
        events.insert(e);
    }

    void
    deschedule(Ev *e)
    {
        events.erase(e);
        e->scheduled = false;
    }

    void
    reschedule(Ev *e, sim::Tick when)
    {
        if (e->scheduled)
            deschedule(e);
        schedule(e, when);
    }

    Ev *
    runOne()
    {
        auto it = events.begin();
        Ev *e = *it;
        events.erase(it);
        cur = e->when;
        e->scheduled = false;
        return e;
    }

    sim::Tick cur = 0;

  private:
    struct Compare
    {
        bool
        operator()(const Ev *a, const Ev *b) const
        {
            if (a->when != b->when)
                return a->when < b->when;
            return a->seq < b->seq;
        }
    };

    std::set<Ev *, Compare> events;
    std::uint64_t nextSeq = 0;
};

constexpr sim::Tick opHorizon = 100'000;

/**
 * One steady-state kernel iteration against the real EventQueue: pop the
 * head and reschedule it forward (the clocked-component pattern), with
 * every fourth iteration instead moving a random resident event — the
 * timer-retarget/MAC-backoff pattern.
 */
struct HeapHarness
{
    sim::EventQueue queue;
    std::vector<std::unique_ptr<sim::EventFunctionWrapper>> pool;
    std::size_t lastRan = 0;
    Lcg lcg;

    explicit HeapHarness(std::size_t depth)
    {
        for (std::size_t i = 0; i < depth; ++i) {
            pool.push_back(std::make_unique<sim::EventFunctionWrapper>(
                [this, i] { lastRan = i; }, "ev"));
            queue.schedule(pool.back().get(), 1 + lcg.next() % opHorizon);
        }
    }

    void
    step(std::uint64_t iter)
    {
        if (iter % 4 == 3) {
            auto &victim = *pool[lcg.next() % pool.size()];
            if (victim.scheduled()) {
                queue.reschedule(&victim,
                                 queue.curTick() + 1 + lcg.next() % opHorizon);
                return;
            }
        }
        queue.runOne();
        queue.schedule(pool[lastRan].get(),
                       queue.curTick() + 1 + lcg.next() % opHorizon);
    }
};

/** The identical op mix against the reference std::set queue. */
struct SetHarness
{
    SetQueue queue;
    std::vector<SetQueue::Ev> pool;
    Lcg lcg;

    explicit SetHarness(std::size_t depth) : pool(depth)
    {
        for (auto &e : pool)
            queue.schedule(&e, 1 + lcg.next() % opHorizon);
    }

    void
    step(std::uint64_t iter)
    {
        if (iter % 4 == 3) {
            auto &victim = pool[lcg.next() % pool.size()];
            if (victim.scheduled) {
                queue.reschedule(&victim,
                                 queue.cur + 1 + lcg.next() % opHorizon);
                return;
            }
        }
        SetQueue::Ev *ran = queue.runOne();
        queue.schedule(ran, queue.cur + 1 + lcg.next() % opHorizon);
    }
};

void
BM_EventQueuePopulated(benchmark::State &state)
{
    HeapHarness harness(static_cast<std::size_t>(state.range(0)));
    std::uint64_t iter = 0;
    for (auto _ : state)
        harness.step(iter++);
    state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}
BENCHMARK(BM_EventQueuePopulated)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void
BM_EventQueueSetBaseline(benchmark::State &state)
{
    SetHarness harness(static_cast<std::size_t>(state.range(0)));
    std::uint64_t iter = 0;
    for (auto _ : state)
        harness.step(iter++);
    state.SetItemsProcessed(static_cast<std::int64_t>(iter));
}
BENCHMARK(BM_EventQueueSetBaseline)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

// --------------------------------------------------------------------------
// N-node broadcast-network scaling.
// --------------------------------------------------------------------------

struct NetworkResult
{
    std::uint64_t eventsProcessed = 0;
    std::uint64_t framesSent = 0;
    std::uint64_t framesDelivered = 0;
    std::uint64_t collisions = 0;
    std::uint64_t epIsrs = 0;
    sim::Tick endTick = 0;

    bool
    operator==(const NetworkResult &o) const
    {
        return eventsProcessed == o.eventsProcessed &&
               framesSent == o.framesSent &&
               framesDelivered == o.framesDelivered &&
               collisions == o.collisions && epIsrs == o.epIsrs &&
               endTick == o.endTick;
    }
};

NetworkResult
collectResult(Network &network)
{
    const Network::Counters c = network.counters();
    NetworkResult result;
    result.eventsProcessed = c.eventsProcessed;
    result.framesSent = c.framesSent;
    result.framesDelivered = c.framesDelivered;
    result.collisions = c.collisions;
    result.epIsrs = c.epIsrs;
    result.endTick = c.endTick;
    return result;
}

/**
 * Simulate @p num_nodes complete sensor nodes on one broadcast channel
 * for @p seconds, sharded over @p threads (1 = the sequential kernel).
 * Every node runs app v1 (sample -> transmit) with a slightly staggered
 * period so the network is not in artificial lockstep. Counters are
 * identical for every thread count (core::Network's contract).
 */
NetworkResult
runNetwork(unsigned num_nodes, double seconds, unsigned threads = 1)
{
    scenario::NetworkSpec spec;
    spec.threads = threads;
    spec.channelSeed = 42;
    // ~40 Hz sampling: 64 nodes x 40 fps x 384 us airtime ~ 98% of
    // channel capacity, so the largest scale runs near saturation
    // (heavy but not total collisions) instead of collapsing.
    for (unsigned i = 0; i < num_nodes; ++i) {
        NodeConfig nc;
        nc.address = static_cast<std::uint16_t>(1 + i);
        nc.seed = 1000 + i;
        nc.sensorSignal = [](sim::Tick) { return 200; };
        apps::AppParams params;
        params.samplePeriodCycles = 2500 + 37 * i;
        spec.addNode().withConfig(nc).withPrebuiltApp(
            apps::buildApp1(params));
    }

    Network network(spec);
    network.runForSeconds(seconds);
    return collectResult(network);
}

/**
 * Simulate @p num_nodes nodes on a 40 m-pitch planar grid under the
 * spatial radio model, sharded over @p threads. Node i connects to its
 * grid neighbors (~61 m reach at these loss parameters) but not across
 * the network, so this is the workload where locality partitioning and
 * per-shard-pair lookahead actually pay off — the broadcast channel
 * above keeps every shard pair coupled by construction.
 */
NetworkResult
runSpatialNetwork(unsigned num_nodes, double seconds, unsigned threads = 1)
{
    const unsigned side = static_cast<unsigned>(
        std::ceil(std::sqrt(static_cast<double>(num_nodes))));
    net::SpatialConfig radio;
    radio.pathLossExponent = 2.8;
    radio.sensitivityDbm = -90.0;

    scenario::NetworkSpec spec;
    spec.withThreads(threads).withSpatial(radio);
    spec.channelSeed = 42;
    for (unsigned i = 0; i < num_nodes; ++i) {
        NodeConfig nc;
        nc.address = static_cast<std::uint16_t>(1 + i);
        nc.seed = 1000 + i;
        nc.sensorSignal = [](sim::Tick) { return 200; };
        apps::AppParams params;
        params.samplePeriodCycles = 2500 + 37 * (i % 64);
        spec.addNode()
            .withConfig(nc)
            .withApp("app1")
            .withParams(params)
            .at(40.0 * (i % side), 40.0 * (i / side));
    }

    Network network(spec);
    network.runForSeconds(seconds);
    return collectResult(network);
}

void
BM_NetworkScale(benchmark::State &state)
{
    auto num_nodes = static_cast<unsigned>(state.range(0));
    std::uint64_t events = 0;
    for (auto _ : state) {
        NetworkResult result = runNetwork(num_nodes, 0.2);
        events += result.eventsProcessed;
        benchmark::DoNotOptimize(result.framesSent);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(events));
}
BENCHMARK(BM_NetworkScale)
    ->Arg(1)
    ->Arg(8)
    ->Arg(32)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond);

// --------------------------------------------------------------------------
// Node/baseline simulated-second benchmarks (unchanged workloads).
// --------------------------------------------------------------------------

void
BM_NodeSimulatedSecond(benchmark::State &state)
{
    double duty = static_cast<double>(state.range(0)) / 1000.0;
    auto period = static_cast<std::uint32_t>(
        std::max(125.0, 100'000.0 / (800.0 * duty)));
    for (auto _ : state) {
        sim::Simulation simulation;
        NodeConfig cfg;
        cfg.sensorSignal = [](sim::Tick) { return 200; };
        SensorNode node(simulation, "node", cfg);
        apps::AppParams params;
        params.samplePeriodCycles = period;
        apps::install(node, apps::buildApp2(params));
        simulation.runForSeconds(1.0);
        benchmark::DoNotOptimize(node.radio().framesSent());
    }
}
BENCHMARK(BM_NodeSimulatedSecond)
    ->Arg(1000)  // duty 1.0 (saturated)
    ->Arg(100)   // duty 0.1
    ->Arg(1)     // duty 0.001
    ->Unit(benchmark::kMillisecond);

void
BM_Mica2SimulatedSecond(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation simulation;
        baseline::Mica2Platform::Config cfg;
        cfg.sensorSignal = [](sim::Tick) { return 200; };
        baseline::Mica2Platform mica(simulation, "mica2", cfg);
        baseline::Mica2App app = baseline::buildMica2App(
            baseline::Mica2AppKind::SendNoFilter, {});
        mica.loadProgram(app.image);
        mica.start(app.entry);
        simulation.runForSeconds(1.0);
        benchmark::DoNotOptimize(mica.framesSent());
    }
}
BENCHMARK(BM_Mica2SimulatedSecond)->Unit(benchmark::kMillisecond);

void
BM_Assembler(benchmark::State &state)
{
    for (auto _ : state) {
        apps::NodeApp app = apps::buildApp4({});
        benchmark::DoNotOptimize(app.mcu.sizeBytes());
    }
}
BENCHMARK(BM_Assembler);

// --------------------------------------------------------------------------
// JSON snapshot + smoke modes.
// --------------------------------------------------------------------------

double
secondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

/** Mops/s of the heap op mix at @p depth over @p iterations. */
template <typename Harness>
double
measureOpsPerSec(std::size_t depth, std::uint64_t iterations)
{
    Harness harness(depth);
    // Warm the queue into steady state before timing.
    for (std::uint64_t i = 0; i < iterations / 10; ++i)
        harness.step(i);
    auto start = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < iterations; ++i)
        harness.step(i);
    double elapsed = secondsSince(start);
    return static_cast<double>(iterations) / elapsed;
}

const char *
compilerId()
{
#if defined(__clang__)
    return "clang " __VERSION__;
#elif defined(__GNUC__)
    return "gcc " __VERSION__;
#else
    return "unknown";
#endif
}

int
writeSnapshot(const std::string &path)
{
    constexpr std::size_t depths[] = {64, 256, 1024, 4096};
    constexpr std::uint64_t iterations = 2'000'000;
    constexpr double network_seconds = 0.5;

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }

    // Host metadata: throughput numbers are meaningless without knowing
    // what produced them (a 1-core CI box cannot show parallel speedup).
    const unsigned cores = std::thread::hardware_concurrency();
    std::fprintf(out, "{\n  \"schema\": \"ulpsn-simkernel-bench/3\",\n");
    std::fprintf(out,
                 "  \"host\": {\"hardware_concurrency\": %u, "
                 "\"build_type\": \"%s\", \"compiler\": \"%s\"},\n",
                 cores, ULP_BUILD_TYPE, compilerId());
    std::fprintf(out, "  \"event_queue\": [\n");
    bool first = true;
    for (std::size_t depth : depths) {
        double heap = measureOpsPerSec<HeapHarness>(depth, iterations);
        double set = measureOpsPerSec<SetHarness>(depth, iterations);
        std::printf("depth %5zu: heap %8.2f Mops/s  set %8.2f Mops/s  "
                    "speedup %.2fx\n",
                    depth, heap / 1e6, set / 1e6, heap / set);
        std::fprintf(out,
                     "%s    {\"depth\": %zu, \"heap_mops\": %.3f, "
                     "\"set_baseline_mops\": %.3f, \"speedup\": %.3f}",
                     first ? "" : ",\n", depth, heap / 1e6, set / 1e6,
                     heap / set);
        first = false;
    }
    std::fprintf(out, "\n  ],\n  \"network_scale\": [\n");

    first = true;
    for (unsigned nodes : {1u, 8u, 32u, 64u}) {
        auto start = std::chrono::steady_clock::now();
        NetworkResult result = runNetwork(nodes, network_seconds);
        double elapsed = secondsSince(start);
        double events_per_sec =
            static_cast<double>(result.eventsProcessed) / elapsed;
        std::printf("nodes %3u: %9llu events in %6.3f s host "
                    "(%7.2f Mev/s), %llu frames sent, %llu delivered, "
                    "%llu collisions\n",
                    nodes,
                    static_cast<unsigned long long>(result.eventsProcessed),
                    elapsed, events_per_sec / 1e6,
                    static_cast<unsigned long long>(result.framesSent),
                    static_cast<unsigned long long>(result.framesDelivered),
                    static_cast<unsigned long long>(result.collisions));
        std::fprintf(
            out,
            "%s    {\"nodes\": %u, \"simulated_seconds\": %.2f, "
            "\"events\": %llu, \"host_seconds\": %.4f, "
            "\"events_per_host_second\": %.0f, \"frames_sent\": %llu, "
            "\"frames_delivered\": %llu, \"collisions\": %llu}",
            first ? "" : ",\n", nodes, network_seconds,
            static_cast<unsigned long long>(result.eventsProcessed), elapsed,
            events_per_sec,
            static_cast<unsigned long long>(result.framesSent),
            static_cast<unsigned long long>(result.framesDelivered),
            static_cast<unsigned long long>(result.collisions));
        first = false;
    }

    std::fprintf(out, "\n  ],\n  \"parallel_scale\": [\n");

    // Sharded-kernel scaling. The broadcast channel couples every shard
    // pair by construction (one shared medium), so it bounds the sync
    // overhead; the spatial grids are what locality partitioning and
    // per-shard-pair lookahead actually speed up. Every thread count
    // must reproduce the sequential counters exactly. Rows where the
    // thread count exceeds the host's cores are flagged oversubscribed:
    // their speedup column measures scheduling noise, not the kernel.
    struct ParallelCase
    {
        const char *scenario;
        unsigned nodes;
        double seconds;
    };
    constexpr ParallelCase cases[] = {
        {"broadcast", 64, 0.5},
        {"spatial", 256, 0.2},
        {"spatial", 1024, 0.05},
    };
    bool parallel_match = true;
    first = true;
    for (const ParallelCase &pc : cases) {
        const bool broadcast = std::strcmp(pc.scenario, "broadcast") == 0;
        NetworkResult seq;
        double seq_elapsed = 0.0;
        for (unsigned threads : {1u, 2u, 4u}) {
            auto start = std::chrono::steady_clock::now();
            NetworkResult result =
                broadcast ? runNetwork(pc.nodes, pc.seconds, threads)
                          : runSpatialNetwork(pc.nodes, pc.seconds, threads);
            double elapsed = secondsSince(start);
            if (threads == 1) {
                seq = result;
                seq_elapsed = elapsed;
            }
            bool match = result == seq;
            parallel_match = parallel_match && match;
            bool oversub = cores != 0 && threads > cores;
            double speedup = seq_elapsed / elapsed;
            std::printf("%-9s %4u nodes, %u threads: %6.3f s host "
                        "(speedup %.2fx%s, stats %s)\n",
                        pc.scenario, pc.nodes, threads, elapsed, speedup,
                        oversub ? ", OVERSUBSCRIBED" : "",
                        match ? "identical" : "DIVERGED");
            std::fprintf(out,
                         "%s    {\"scenario\": \"%s\", \"threads\": %u, "
                         "\"nodes\": %u, \"simulated_seconds\": %.2f, "
                         "\"host_seconds\": %.4f, "
                         "\"speedup_vs_sequential\": %.3f, "
                         "\"oversubscribed\": %s, \"stats_identical\": %s}",
                         first ? "" : ",\n", pc.scenario, threads, pc.nodes,
                         pc.seconds, elapsed, speedup,
                         oversub ? "true" : "false",
                         match ? "true" : "false");
            first = false;
        }
    }

    // Determinism: two seeded 64-node runs must agree on every stat.
    NetworkResult a = runNetwork(64, network_seconds);
    NetworkResult b = runNetwork(64, network_seconds);
    bool deterministic = a == b;
    std::printf("64-node determinism check: %s\n",
                deterministic ? "PASS" : "FAIL");
    std::fprintf(out,
                 "\n  ],\n  \"determinism_64_nodes\": {\"deterministic\": "
                 "%s, \"events\": %llu, \"frames_sent\": %llu, "
                 "\"frames_delivered\": %llu, \"collisions\": %llu}\n}\n",
                 deterministic ? "true" : "false",
                 static_cast<unsigned long long>(a.eventsProcessed),
                 static_cast<unsigned long long>(a.framesSent),
                 static_cast<unsigned long long>(a.framesDelivered),
                 static_cast<unsigned long long>(a.collisions));
    std::fclose(out);
    std::printf("snapshot written to %s\n", path.c_str());
    return (deterministic && parallel_match) ? 0 : 1;
}

/**
 * Perf-regression smoke (CI): re-measure the network_scale rows and
 * compare each against the committed snapshot at @p path. The band is
 * deliberately loose — fail only below ref/4 — because the CI host
 * differs from the host that wrote the snapshot; the goal is catching
 * order-of-magnitude kernel regressions, not 10% drift. Run it on a
 * Release build only: a sanitizer or Debug build is legitimately far
 * slower than any committed Release number.
 */
int
runCheck(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "check: cannot read %s\n", path.c_str());
        return 1;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();

    const std::size_t begin = text.find("\"network_scale\"");
    const std::size_t end = text.find("\"parallel_scale\"");
    if (begin == std::string::npos || end == std::string::npos ||
        end <= begin) {
        std::fprintf(stderr, "check: %s has no network_scale section\n",
                     path.c_str());
        return 1;
    }

    const unsigned cores = std::thread::hardware_concurrency();
    std::printf("check: host has %u core(s), %s build; reference %s\n",
                cores, ULP_BUILD_TYPE, path.c_str());

    int failures = 0;
    unsigned rows = 0;
    std::size_t pos = begin;
    while (true) {
        const std::size_t n = text.find("\"nodes\": ", pos);
        if (n == std::string::npos || n >= end)
            break;
        const unsigned nodes = static_cast<unsigned>(
            std::strtoul(text.c_str() + n + 9, nullptr, 10));
        const std::size_t s = text.find("\"simulated_seconds\": ", n);
        const double sim_seconds =
            (s != std::string::npos && s < end)
                ? std::strtod(text.c_str() + s + 21, nullptr)
                : 0.5;
        const std::size_t e = text.find("\"events_per_host_second\": ", n);
        if (e == std::string::npos || e >= end)
            break;
        const double ref = std::strtod(text.c_str() + e + 26, nullptr);
        pos = e + 26;
        ++rows;

        // Same simulated duration as the committed row, best of two
        // runs: the first run eats the cold caches.
        double measured = 0.0;
        for (int attempt = 0; attempt < 2; ++attempt) {
            auto start = std::chrono::steady_clock::now();
            NetworkResult result = runNetwork(nodes, sim_seconds);
            double elapsed = secondsSince(start);
            measured = std::max(
                measured,
                static_cast<double>(result.eventsProcessed) / elapsed);
        }
        bool ok = ref <= 0.0 || measured >= ref / 4.0;
        std::printf("check: %4u nodes: %8.2f Mev/s vs committed %8.2f "
                    "Mev/s -> %s\n",
                    nodes, measured / 1e6, ref / 1e6,
                    ok ? "ok" : "REGRESSION");
        if (!ok)
            ++failures;
    }
    if (rows == 0) {
        std::fprintf(stderr, "check: no network_scale rows parsed from %s\n",
                     path.c_str());
        return 1;
    }
    if (failures) {
        std::fprintf(stderr, "check: %d of %u rows below the ref/4 band\n",
                     failures, rows);
        return 1;
    }
    std::printf("check OK: all %u network_scale rows within band\n", rows);
    return 0;
}

int
runSmoke(unsigned threads)
{
    const unsigned cores = std::thread::hardware_concurrency();
    if (cores != 0 && threads > cores) {
        // Oversubscribed: still worth running (the TSan correctness
        // oracle is the point of --threads), but never time it.
        std::printf("smoke: %u threads on %u host core(s) -- "
                    "oversubscribed; correctness-only, no timings\n",
                    threads, cores);
    }
    for (unsigned nodes : {1u, 8u, 32u, 64u}) {
        const unsigned t = std::min(threads, nodes);
        NetworkResult result = runNetwork(nodes, 0.05, t);
        if (result.eventsProcessed == 0 || result.framesSent == 0 ||
            (nodes > 1 &&
             result.framesDelivered + result.collisions == 0)) {
            std::fprintf(stderr, "smoke: %u-node run looks dead\n", nodes);
            return 1;
        }
        std::printf("smoke %2u nodes (%u threads): %llu events, "
                    "%llu frames\n",
                    nodes, t,
                    static_cast<unsigned long long>(result.eventsProcessed),
                    static_cast<unsigned long long>(result.framesSent));
    }
    NetworkResult a = runNetwork(64, 0.05, threads);
    NetworkResult b = runNetwork(64, 0.05, threads);
    if (!(a == b)) {
        std::fprintf(stderr, "smoke: 64-node run is not deterministic\n");
        return 1;
    }
    if (threads > 1) {
        NetworkResult seq = runNetwork(64, 0.05, 1);
        if (!(a == seq)) {
            std::fprintf(stderr,
                         "smoke: %u-thread stats diverge from sequential\n",
                         threads);
            return 1;
        }
    }
    std::printf("smoke OK (64-node rerun bit-identical)\n");
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    unsigned threads = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            threads = static_cast<unsigned>(std::atoi(argv[i] + 10));
        } else if (std::strncmp(argv[i], "--json", 6) == 0) {
            std::string path = "BENCH_simkernel.json";
            if (argv[i][6] == '=')
                path = argv[i] + 7;
            return writeSnapshot(path);
        } else if (std::strncmp(argv[i], "--check", 7) == 0) {
            std::string path = "BENCH_simkernel.json";
            if (argv[i][7] == '=')
                path = argv[i] + 8;
            return runCheck(path);
        }
    }
    if (smoke)
        return runSmoke(threads == 0 ? 1 : threads);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
