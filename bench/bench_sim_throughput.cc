/**
 * @file
 * Host-side performance of the simulators (google-benchmark): how fast a
 * simulated second runs for the event-driven node (nearly free between
 * events), for the saturated node, and for the Mica2 baseline (which
 * executes every CPU instruction), plus the raw event-queue rate.
 */

#include <benchmark/benchmark.h>

#include "baseline/mica2_platform.hh"
#include "baseline/minios.hh"
#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

namespace {

void
BM_EventQueue(benchmark::State &state)
{
    sim::EventQueue queue;
    sim::EventFunctionWrapper event([] {}, "noop");
    std::uint64_t processed = 0;
    for (auto _ : state) {
        queue.schedule(&event, queue.curTick() + 10);
        queue.runOne();
        ++processed;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(processed));
}
BENCHMARK(BM_EventQueue);

void
BM_NodeSimulatedSecond(benchmark::State &state)
{
    double duty = static_cast<double>(state.range(0)) / 1000.0;
    auto period = static_cast<std::uint32_t>(
        std::max(125.0, 100'000.0 / (800.0 * duty)));
    for (auto _ : state) {
        sim::Simulation simulation;
        NodeConfig cfg;
        cfg.sensorSignal = [](sim::Tick) { return 200; };
        SensorNode node(simulation, "node", cfg);
        apps::AppParams params;
        params.samplePeriodCycles = period;
        apps::install(node, apps::buildApp2(params));
        simulation.runForSeconds(1.0);
        benchmark::DoNotOptimize(node.radio().framesSent());
    }
}
BENCHMARK(BM_NodeSimulatedSecond)
    ->Arg(1000)  // duty 1.0 (saturated)
    ->Arg(100)   // duty 0.1
    ->Arg(1)     // duty 0.001
    ->Unit(benchmark::kMillisecond);

void
BM_Mica2SimulatedSecond(benchmark::State &state)
{
    for (auto _ : state) {
        sim::Simulation simulation;
        baseline::Mica2Platform::Config cfg;
        cfg.sensorSignal = [](sim::Tick) { return 200; };
        baseline::Mica2Platform mica(simulation, "mica2", cfg);
        baseline::Mica2App app = baseline::buildMica2App(
            baseline::Mica2AppKind::SendNoFilter, {});
        mica.loadProgram(app.image);
        mica.start(app.entry);
        simulation.runForSeconds(1.0);
        benchmark::DoNotOptimize(mica.framesSent());
    }
}
BENCHMARK(BM_Mica2SimulatedSecond)->Unit(benchmark::kMillisecond);

void
BM_Assembler(benchmark::State &state)
{
    for (auto _ : state) {
        apps::NodeApp app = apps::buildApp4({});
        benchmark::DoNotOptimize(app.mcu.sizeBytes());
    }
}
BENCHMARK(BM_Assembler);

} // namespace

BENCHMARK_MAIN();
