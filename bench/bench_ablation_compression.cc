/**
 * @file
 * Ablation for the future-work compression slave (§7): batched telemetry
 * with and without delta compression. Radio airtime is the dominant
 * platform energy the paper's estimates exclude, so the win is reported
 * as bytes on air / airtime / estimated radio energy at the CC2420's
 * 0 dBm transmit draw, against the compressor's own added power.
 */

#include <cstdio>

#include "baseline/mica2_power.hh"
#include "bench_util.hh"
#include "core/apps.hh"
#include "core/compressor.hh"
#include "core/sensor_node.hh"
#include "sim/simulation.hh"

namespace {

using namespace ulp;
using namespace ulp::core;

struct Result
{
    std::uint64_t frames;
    std::uint64_t payloadBytes;
    double airSeconds;
    double compressorWatts;
    double totalWatts;
};

apps::NodeApp
telemetryApp(bool compressed)
{
    apps::NodeApp app;
    app.name = compressed ? "telemetry-compressed" : "telemetry-raw";

    if (compressed) {
        app.ep = epAssemble(R"(
timer_isr:
    SWITCHON SENSOR
    READ SENSOR_DATA
    SWITCHOFF SENSOR
    WRITE COMP_APPEND
    TERMINATE
compdone_isr:
    SWITCHON MSGPROC
    TRANSFER COMP_OUTBUF, MSG_PAYLOAD, 21
    READ COMP_OUTLEN
    WRITE MSG_PAYLOAD_LEN
    WRITEI MSG_CTRL, 1
    TERMINATE
txready_isr:
    SWITCHON RADIO
    READ MSG_OUT_LEN
    WRITE RADIO_TXLEN
    TRANSFER MSG_OUTBUF, RADIO_TXFIFO, 32
    SWITCHOFF MSGPROC
    WRITEI RADIO_CTRL, 1
    TERMINATE
txdone_isr:
    SWITCHOFF RADIO
    TERMINATE
.isr Timer0, timer_isr
.isr CompDone, compdone_isr
.isr MsgTxReady, txready_isr
.isr RadioTxDone, txdone_isr
)");
    } else {
        app.ep = epAssemble(R"(
timer_isr:
    SWITCHON SENSOR
    READ SENSOR_DATA
    SWITCHOFF SENSOR
    WRITE MSG_APPEND
    TERMINATE
batch_isr:
    WRITEI MSG_CTRL, 1
    TERMINATE
txready_isr:
    SWITCHON RADIO
    READ MSG_OUT_LEN
    WRITE RADIO_TXLEN
    TRANSFER MSG_OUTBUF, RADIO_TXFIFO, 32
    SWITCHOFF MSGPROC
    WRITEI RADIO_CTRL, 1
    TERMINATE
txdone_isr:
    SWITCHOFF RADIO
    TERMINATE
.isr Timer0, timer_isr
.isr MsgBatchFull, batch_isr
.isr MsgTxReady, txready_isr
.isr RadioTxDone, txdone_isr
)");
    }

    std::string mc = sim::csprintf(".equ MCU_CODE, %u\n", map::mcuCodeBase);
    mc += "\n.org MCU_CODE\ninit:\n    LDI r0, 16\n";
    mc += compressed ? "    STS COMP_BATCH, r0\n"
                     : "    STS MSG_BATCH, r0\n"
                       "    LDI r0, 0\n"
                       "    STS MSG_PAYLOAD_LEN, r0\n";
    mc += "    LDI r0, 0x03\n"
          "    STS TIMER0_LOADHI, r0\n"
          "    LDI r0, 0xE8\n"
          "    STS TIMER0_LOADLO, r0\n"
          "    LDI r0, 3\n"
          "    STS TIMER0_CTRL, r0\n"
          "    SLEEP\n";
    app.mcu = mcu::assemble(mc, epDefaultSymbols());
    app.initEntry = app.mcu.symbol("init");
    return app;
}

Result
run(bool compressed)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick now) -> std::uint8_t {
        double t = sim::ticksToSeconds(now);
        return static_cast<std::uint8_t>(128 + 40 * std::sin(t / 3.0));
    };
    cfg.sensorNoiseStddev = 1.0;
    SensorNode node(simulation, "node", cfg);
    apps::install(node, telemetryApp(compressed));
    simulation.runForSeconds(60.0);

    Result result{};
    result.frames = node.radio().framesSent();
    // Payload bytes on air: frames carry overhead + payload; count both.
    const auto &radio = node.radio();
    (void)radio;
    // Derive airtime from the radio's active residency (it is active
    // exactly while transmitting).
    result.airSeconds = sim::ticksToSeconds(
        node.radio().energyTracker().residency(power::PowerState::Active));
    result.payloadBytes =
        compressed ? node.compressor().bytesOut()
                   : node.msgProc().framesPrepared() * 16;
    result.compressorWatts = node.compressor().averagePowerWatts();
    result.totalWatts = node.totalAverageWatts();
    return result;
}

} // namespace

int
main()
{
    using namespace ulp::bench;

    banner("Ablation: delta-compression slave (future-work accelerator, "
           "paper §7)");
    std::printf("Workload: 100 Hz sampling, 16-sample batches, 60 s, "
                "slowly varying signal\n\n");

    Result raw = run(false);
    Result comp = run(true);

    std::printf("%-28s %14s %14s\n", "", "raw", "compressed");
    rule();
    std::printf("%-28s %14llu %14llu\n", "Frames sent",
                static_cast<unsigned long long>(raw.frames),
                static_cast<unsigned long long>(comp.frames));
    std::printf("%-28s %14llu %14llu\n", "Payload bytes",
                static_cast<unsigned long long>(raw.payloadBytes),
                static_cast<unsigned long long>(comp.payloadBytes));
    std::printf("%-28s %11.1f ms %11.1f ms\n", "Radio airtime",
                raw.airSeconds * 1e3, comp.airSeconds * 1e3);
    std::printf("%-28s %14s %14s\n", "Compressor power",
                fmtWatts(raw.compressorWatts).c_str(),
                fmtWatts(comp.compressorWatts).c_str());

    rule();
    double air_saving = 1.0 - comp.airSeconds / raw.airSeconds;
    // Radio TX at the CC2420-class 0 dBm draw (Table 1: 8.5 mA @ 3 V).
    double radio_tx_watts =
        baseline::radioTx0dBmAmps * baseline::mica2SupplyVolts;
    double saved_radio_uw =
        (raw.airSeconds - comp.airSeconds) * radio_tx_watts / 60.0 * 1e6;
    double added_comp_uw =
        (comp.compressorWatts - raw.compressorWatts) * 1e6;
    std::printf("Airtime saved: %.1f%%. At a CC2420-class TX draw that is "
                "%.3f uW of average radio\npower bought for %.3f uW of "
                "compressor power.\n",
                100.0 * air_saving, saved_radio_uw, added_comp_uw);
    return 0;
}
