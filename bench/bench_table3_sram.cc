/**
 * @file
 * Reproduces Table 3 and the §5.2 SRAM claims: per-bank power (active /
 * idle / gated), the >98 % cell-array saving from Vdd-gating, the 950 ns
 * bank wakeup, and the 2.07 uW whole-array figure at 100 kHz / 1.2 V —
 * first from the static model, then measured from a simulated SRAM driven
 * at full rate.
 */

#include <cstdio>

#include "bench_util.hh"
#include "memory/sram.hh"
#include "sim/simulation.hh"

int
main()
{
    using namespace ulp;

    memory::SramPowerModel power;

    bench::banner("Table 3: power for a single 256 B bank and associated "
                  "control circuitry (1.2 V)");
    std::printf("%-14s %14s %14s %10s\n", "", "Measured", "Paper", "Delta");
    bench::rule();
    std::printf("%-14s %14s %14s %10s\n", "Active",
                bench::fmtWatts(power.bankActiveWatts).c_str(), "1.93 uW",
                bench::fmtDelta(power.bankActiveWatts, 1.93e-6).c_str());
    std::printf("%-14s %14s %14s %10s\n", "Idle",
                bench::fmtWatts(power.bankIdleWatts).c_str(), "409 pW",
                bench::fmtDelta(power.bankIdleWatts, 409e-12).c_str());
    std::printf("%-14s %14s %14s %10s\n", "Gated",
                bench::fmtWatts(power.bankGatedWatts).c_str(), "342 pW",
                bench::fmtDelta(power.bankGatedWatts, 342e-12).c_str());

    bench::rule();
    double saving = 1.0 - power.cellArrayGatedWatts /
                              power.cellArrayIdleWatts;
    std::printf("Cell array: %s ungated vs %s gated -> %.1f%% reduction "
                "(paper: >98%%, 66.5 pW vs <1 pW)\n",
                bench::fmtWatts(power.cellArrayIdleWatts).c_str(),
                bench::fmtWatts(power.cellArrayGatedWatts).c_str(),
                100.0 * saving);
    std::printf("Bank wakeup after ungating: %.0f ns (paper: 950 ns, under "
                "one 100 kHz cycle)\n", power.wakeupSeconds * 1e9);

    double array = power.arrayWatts(8, 1, 0);
    std::printf("2 KiB array, one bank continuously active: %s "
                "(paper: 2.07 uW) %s\n",
                bench::fmtWatts(array).c_str(),
                bench::fmtDelta(array, 2.07e-6).c_str());
    std::printf("2 KiB array fully idle: %s (Table 5 memory idle: "
                "3 nW)\n",
                bench::fmtWatts(power.arrayWatts(8, 0, 0)).c_str());

    // Dynamic check: a simulated SRAM accessed every cycle for one second
    // should average the published whole-array active figure.
    bench::rule();
    {
        sim::Simulation simulation;
        memory::Sram::Config cfg;
        memory::Sram sram(simulation, "sram", cfg);
        const sim::Tick cycle = 10'000; // 100 kHz
        for (unsigned i = 0; i < 100'000; ++i) {
            simulation.runUntil(static_cast<sim::Tick>(i) * cycle);
            sram.read(static_cast<std::uint16_t>(i % 2048));
        }
        simulation.runUntil(100'000ULL * cycle);
        std::printf("Simulated: one access per cycle for 1 s -> average "
                    "%s (expect ~2.07 uW)\n",
                    bench::fmtWatts(sram.averagePowerWatts()).c_str());
    }
    {
        sim::Simulation simulation;
        memory::Sram::Config cfg;
        memory::Sram sram(simulation, "sram", cfg);
        for (unsigned bank = 2; bank < 8; ++bank)
            sram.gateBank(bank);
        simulation.runForSeconds(1.0);
        std::printf("Simulated: idle with banks 2-7 gated for 1 s -> "
                    "average %s (2 idle + 6 gated banks)\n",
                    bench::fmtWatts(sram.averagePowerWatts()).c_str());
    }
    return 0;
}
