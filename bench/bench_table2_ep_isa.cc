/**
 * @file
 * Reproduces Table 2: the event processor instruction set — mnemonics,
 * word counts, and semantics — plus measured per-instruction execution
 * costs (fetch + execute at the calibrated microarchitectural timings),
 * which the paper leaves implicit.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/ep_isa.hh"
#include "core/event_processor.hh"

int
main()
{
    using namespace ulp;
    using core::EpOpcode;

    struct Row
    {
        EpOpcode op;
        const char *sizeText;
        const char *description;
    };
    const Row rows[] = {
        {EpOpcode::SWITCHON, "One word",
         "Turn on a component and wait for its ready acknowledgment"},
        {EpOpcode::SWITCHOFF, "One word", "Turn off a component"},
        {EpOpcode::READ, "Three words",
         "Read a location in the address space into the register"},
        {EpOpcode::WRITE, "Three words",
         "Write a location in the address space from the register"},
        {EpOpcode::WRITEI, "Three words",
         "Write an immediate value to a location in the address space"},
        {EpOpcode::TRANSFER, "Five words",
         "Transfer a block of data within the address space"},
        {EpOpcode::TERMINATE, "One word",
         "Terminate the ISR without waking the microcontroller"},
        {EpOpcode::WAKEUP, "Two words",
         "Terminate the ISR and wake the microcontroller at an ISR address"},
    };

    core::EventProcessor::Timing t;

    bench::banner("Table 2: Event processor instruction set");
    std::printf("%-10s %-12s %-8s %s\n", "Instr", "Size", "Cycles",
                "Description");
    bench::rule();
    for (const Row &row : rows) {
        unsigned words = core::epInstrWords(row.op);
        unsigned fetch = static_cast<unsigned>(t.fetchPerWord) * words;
        unsigned exec = 0;
        char cycles[32];
        switch (row.op) {
          case EpOpcode::SWITCHON: exec = t.switchOn; break;
          case EpOpcode::SWITCHOFF: exec = t.switchOff; break;
          case EpOpcode::READ: exec = t.read; break;
          case EpOpcode::WRITE: exec = t.write; break;
          case EpOpcode::WRITEI: exec = t.writei; break;
          case EpOpcode::TERMINATE: exec = t.terminate; break;
          case EpOpcode::WAKEUP: exec = t.wakeup; break;
          case EpOpcode::TRANSFER: exec = 0; break;
        }
        if (row.op == EpOpcode::TRANSFER) {
            std::snprintf(cycles, sizeof(cycles), "%u+2/B", fetch);
        } else if (row.op == EpOpcode::SWITCHON) {
            std::snprintf(cycles, sizeof(cycles), "%u+ack", fetch + exec);
        } else {
            std::snprintf(cycles, sizeof(cycles), "%u", fetch + exec);
        }
        std::printf("%-10s %-12s %-8s %s\n", core::epMnemonic(row.op),
                    row.sizeText, cycles, row.description);
    }
    bench::rule();
    std::printf("Encoding: 3-bit opcode + 5-bit operand in word 0; "
                "addresses big-endian.\n");
    std::printf("ISR lookup costs %u cycles; one temporary data register.\n",
                static_cast<unsigned>(t.lookup));
    return 0;
}
