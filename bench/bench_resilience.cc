/**
 * @file
 * Resilience sweep: how the mesh degrades and recovers when its busiest
 * relays die mid-run, across churn rates (how many of the top relays
 * fail) and repair policies (none / periodic / triggered / the
 * energy-aware metric on battery-backed nodes), at 64 to 1024 nodes on
 * a constant-density grid with a center sink.
 *
 * Every row runs the scenario through the ResilienceManager — declared
 * kills land on exact ticks, repair rides the modeled µC
 * reconfiguration path — and is gated on the cross-thread-count
 * oracle: counters, the merged statistics tree and the resilience
 * report of the 2- and 4-shard runs must be byte-identical to the
 * sequential run before the row is reported.
 *
 * The largest meshes saturate: the 16-bit sample timer caps the period
 * at ~0.65 s, so past a few hundred nodes the sink funnel congests and
 * the absolute delivery ratios collapse. Those rows stay in the sweep
 * as determinism-at-scale gates — repair still beats no-repair, but
 * read the 64-node block for the recovery story.
 *
 * Modes:
 *   (none)         the full table on stdout
 *   --smoke        one short gated run at 64 nodes (CI under sanitizers)
 *   --json[=PATH]  machine-readable BENCH_resilience.json snapshot
 */

#include <algorithm>
#include <climits>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/network.hh"
#include "scenario/lower.hh"
#include "scenario/resilience.hh"
#include "scenario/scenario.hh"
#include "sim/logging.hh"
#include "sim/types.hh"

using namespace ulp;
using scenario::RepairPolicy;
using scenario::RouteMetric;

namespace {

/** Named policy variants swept per churn point. */
struct Policy
{
    const char *name;
    RepairPolicy repair;
    RouteMetric metric;
};

constexpr Policy policies[] = {
    {"none", RepairPolicy::None, RouteMetric::Hops},
    {"periodic", RepairPolicy::Periodic, RouteMetric::Hops},
    {"triggered", RepairPolicy::Triggered, RouteMetric::Hops},
    {"energy", RepairPolicy::Triggered, RouteMetric::Energy},
};

/**
 * The survivable-mesh grid: reconfigurable (app4) relays routing to a
 * center sink over the spatial radio. The sampling stagger shrinks
 * with the node count so the largest per-node timer period still fits
 * the 16-bit hardware timer.
 */
scenario::Scenario
gridScenario(unsigned nodes, unsigned threads, double seconds)
{
    const unsigned side =
        static_cast<unsigned>(std::lround(std::sqrt(nodes)));
    const unsigned center = (side / 2 - 1) * side + (side / 2 - 1);
    const std::uint32_t period = 60000;
    const std::uint32_t stagger = (65535 - period) / (nodes - 1);

    scenario::Scenario sc;
    sc.name = "bench-resilience";
    sc.seconds = seconds;
    sc.seed = 42;
    sc.threads = threads;
    sc.nodes.count = nodes;
    sc.nodes.app = "app4";
    sc.nodes.period = period;
    sc.nodes.periodStagger = stagger;
    sc.nodes.placement = scenario::Placement::Grid;
    sc.nodes.spacing = 30.0;
    sc.radio.model = scenario::RadioModel::Spatial;
    sc.radio.spatial.pathLossExponent = 2.8;
    sc.radio.spatial.sensitivityDbm = -90.0;
    sc.routes.sink = center;
    sc.lifecycle.emplace();
    return sc;
}

/** Subtree size of every node in the lowered route tree. */
std::vector<unsigned>
subtreeSizes(const scenario::Lowered &low)
{
    const unsigned N = static_cast<unsigned>(low.parents.size());
    std::vector<unsigned> sub(N, 1);
    for (unsigned d = low.maxDepth(); d > 0; --d) {
        for (unsigned i = 0; i < N; ++i) {
            if (low.depth[i] == d && low.parents[i] != UINT_MAX)
                sub[low.parents[i]] += sub[i];
        }
    }
    return sub;
}

/** The `kills` busiest relays of the lowered route tree, busiest first. */
std::vector<unsigned>
busiestRelays(const scenario::Scenario &sc, unsigned kills)
{
    scenario::Lowered low = scenario::lower(sc);
    std::vector<unsigned> sub = subtreeSizes(low);
    std::vector<unsigned> order;
    for (unsigned i = 0; i < sc.nodes.count; ++i)
        if (i != *sc.routes.sink)
            order.push_back(i);
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return sub[a] != sub[b] ? sub[a] > sub[b] : a < b;
    });
    order.resize(kills);
    return order;
}

struct Row
{
    unsigned nodes = 0;
    double seconds = 0.0;
    unsigned kills = 0;
    const char *policy = "";
    double steadyRatio = 0.0;
    double postRepairRatio = 0.0;
    std::uint64_t repairRounds = 0;
    std::uint64_t repairUpdates = 0;
    double firstDeathS = 0.0;
    double firstPartitionS = 0.0;
    double lifetimeS = 0.0; ///< last window that still delivered
    double totalEnergyJ = 0.0;
    bool oracleOk = false; ///< K = 2/4 byte-identical to K = 1
};

struct RunResult
{
    core::Network::Counters counters;
    scenario::ResilienceReport report;
    std::string reportText;
    double totalEnergyJ = 0.0;
    std::string stats;
};

RunResult
run(const scenario::Scenario &sc)
{
    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    scenario::ResilienceManager manager(network, sc, low);

    RunResult r;
    r.report = manager.run();
    std::ostringstream rep;
    scenario::printResilienceReport(rep, r.report);
    r.reportText = rep.str();
    for (unsigned i = 0; i < network.numNodes(); ++i)
        r.totalEnergyJ += network.node(i).totalAverageWatts() * low.seconds;
    std::ostringstream os;
    network.dumpStats(os);
    r.stats = os.str();
    r.counters = network.counters();
    return r;
}

/**
 * One sweep row: `kills` busiest relays die together at seconds / 4
 * under the given repair policy, gated on the K = 2/4 oracle.
 */
Row
sweepPoint(unsigned nodes, double seconds, unsigned kills,
           const Policy &policy)
{
    scenario::Scenario sc = gridScenario(nodes, 1, seconds);
    const double killAt = seconds / 4.0;
    for (unsigned relay : busiestRelays(sc, kills))
        sc.lifecycle->fail.push_back({relay, killAt});
    sc.lifecycle->repair = policy.repair;
    sc.lifecycle->repairPeriod = 0.5;
    sc.lifecycle->metric = policy.metric;
    if (policy.metric == RouteMetric::Energy) {
        // Reserve-aware routing needs a battery to read reserves from.
        // 0.5 J over a few seconds never browns out — the declared
        // kills stay the only churn; the metric just sees the busier
        // relays' deeper discharge.
        sc.lifecycle->battery = 0.5;
        sc.lifecycle->batteryInterval = 0.05;
    }
    RunResult k1 = run(sc);

    Row row;
    row.nodes = nodes;
    row.seconds = seconds;
    row.kills = kills;
    row.policy = policy.name;
    row.steadyRatio = k1.report.steadyDeliveryRatio;
    row.postRepairRatio = k1.report.postRepairDeliveryRatio;
    row.repairRounds = k1.report.repairRounds;
    row.repairUpdates = k1.report.repairUpdates;
    row.firstDeathS = sim::ticksToSeconds(k1.report.firstDeathTick);
    row.firstPartitionS =
        sim::ticksToSeconds(k1.report.firstPartitionTick);
    row.lifetimeS = sim::ticksToSeconds(k1.report.lastDeliveryTick);
    row.totalEnergyJ = k1.totalEnergyJ;

    // The determinism gate: the same churn on 2 and 4 shards must merge
    // to identical counters, stats and resilience report.
    row.oracleOk = true;
    for (unsigned threads : {2u, 4u}) {
        sc.threads = threads;
        RunResult kn = run(sc);
        if (!(kn.counters == k1.counters) || kn.stats != k1.stats ||
            kn.reportText != k1.reportText) {
            row.oracleOk = false;
            std::fprintf(stderr,
                         "bench_resilience: %u nodes %s: threads=%u "
                         "diverged from the sequential run\n",
                         nodes, policy.name, threads);
        }
    }
    return row;
}

void
printTable(const std::vector<Row> &rows)
{
    std::printf("%7s %6s %10s %7s %7s %7s %8s %7s %7s %7s\n", "nodes",
                "kills", "policy", "steady", "postfix", "rounds",
                "updates", "death", "life", "oracle");
    for (const Row &r : rows) {
        std::printf("%7u %6u %10s %7.3f %7.3f %7llu %8llu %6.2fs "
                    "%6.2fs %7s\n",
                    r.nodes, r.kills, r.policy, r.steadyRatio,
                    r.postRepairRatio,
                    static_cast<unsigned long long>(r.repairRounds),
                    static_cast<unsigned long long>(r.repairUpdates),
                    r.firstDeathS, r.lifetimeS,
                    r.oracleOk ? "ok" : "FAIL");
    }
}

int
writeJson(const std::vector<Row> &rows, const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f) {
        std::fprintf(stderr, "bench_resilience: cannot write %s\n",
                     path.c_str());
        return 1;
    }
    std::fprintf(f, "{\n  \"benchmark\": \"resilience\",\n  \"rows\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"nodes\": %u, \"seconds\": %g, \"kills\": %u, "
            "\"policy\": \"%s\", \"steady_delivery_ratio\": %.9g, "
            "\"post_repair_delivery_ratio\": %.9g, "
            "\"repair_rounds\": %llu, \"repair_updates\": %llu, "
            "\"first_death_s\": %.9g, \"first_partition_s\": %.9g, "
            "\"lifetime_s\": %.9g, \"total_energy_j\": %.9g, "
            "\"threads_oracle_ok\": %s}%s\n",
            r.nodes, r.seconds, r.kills, r.policy, r.steadyRatio,
            r.postRepairRatio,
            static_cast<unsigned long long>(r.repairRounds),
            static_cast<unsigned long long>(r.repairUpdates),
            r.firstDeathS, r.firstPartitionS, r.lifetimeS,
            r.totalEnergyJ, r.oracleOk ? "true" : "false",
            i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool json = false;
    std::string jsonPath = "BENCH_resilience.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0) {
            smoke = true;
        } else if (std::strcmp(argv[i], "--json") == 0) {
            json = true;
        } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
            json = true;
            jsonPath = argv[i] + 7;
        } else {
            std::fprintf(
                stderr,
                "usage: bench_resilience [--smoke] [--json[=PATH]]\n");
            return 2;
        }
    }

    sim::setQuiet(true); // keep the table clean of msgProc-busy warnings

    try {
        std::vector<Row> rows;
        if (smoke) {
            rows.push_back(sweepPoint(64, 4.0, 3, policies[2]));
        } else {
            // Churn-rate x repair-policy grid at 64 nodes, then the
            // scale points: larger meshes, triggered repair vs none.
            for (unsigned kills : {3u, 6u})
                for (const Policy &policy : policies)
                    rows.push_back(sweepPoint(64, 8.0, kills, policy));
            rows.push_back(sweepPoint(256, 6.0, 6, policies[0]));
            rows.push_back(sweepPoint(256, 6.0, 6, policies[2]));
            rows.push_back(sweepPoint(1024, 4.0, 8, policies[2]));
        }

        printTable(rows);
        bool ok = true;
        for (const Row &r : rows) {
            ok = ok && r.oracleOk;
            // Every repaired row must actually deliver after its last
            // repair round; a silent zero is a regression, not a row.
            if (r.repairRounds > 0 && r.postRepairRatio == 0.0) {
                ok = false;
                std::fprintf(stderr,
                             "bench_resilience: %u nodes %s: nothing "
                             "delivered after repair\n",
                             r.nodes, r.policy);
            }
        }
        if (json && ok)
            return writeJson(rows, jsonPath);
        return ok ? 0 : 1;
    } catch (const sim::SimError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }
}
