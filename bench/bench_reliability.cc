/**
 * @file
 * Reliability sweep: multi-hop delivery ratio and energy per delivered
 * packet as the channel's loss burstiness grows, with the MAC layer's
 * ACK + retransmit machinery off (the paper's fire-and-forget radio)
 * and on (3 retries, CSMA-CA backoff, auto-ACK).
 *
 * The channel runs a Gilbert-Elliott two-state process driven by a
 * fault-injection campaign: the stationary Bad-state fraction is held
 * at 20 % while the mean fade length sweeps from 1 to 8 frames. Longer
 * fades hurt fire-and-forget superlinearly (whole bursts of samples
 * vanish); retransmissions ride through them and buy their delivery
 * with a modest energy premium per packet.
 */

#include <cstdio>

#include "bench_util.hh"
#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "fault/fault_injector.hh"
#include "net/channel.hh"
#include "sim/simulation.hh"

namespace {

using namespace ulp;
using namespace ulp::core;

constexpr double runSeconds = 20.0;
constexpr std::uint16_t sinkAddr = 0x0000;

/** Counts unique data frames that reach the base station intact. */
struct Sink : net::Transceiver
{
    std::uint64_t delivered = 0;
    std::uint8_t lastSeq = 0xFF;
    std::uint16_t lastSrc = 0xFFFF;

    void
    frameArrived(const net::Frame &frame, bool corrupted) override
    {
        if (corrupted || frame.type != net::Frame::Type::Data ||
            frame.dest != sinkAddr) {
            return;
        }
        if (frame.src == lastSrc && frame.seq == lastSeq)
            return; // retransmission of an already-delivered frame
        lastSrc = frame.src;
        lastSeq = frame.seq;
        ++delivered;
    }
};

struct Result
{
    std::uint64_t prepared;
    std::uint64_t delivered;
    std::uint64_t retransmissions;
    std::uint64_t txFailures;
    double joulesPerDelivered;

    double
    ratio() const
    {
        return prepared ? static_cast<double>(delivered) / prepared : 0.0;
    }
};

Result
run(double mean_burst_frames, std::uint8_t mac_retries)
{
    // Stationary Bad fraction 0.2: pGB/(pGB + pBG) with pBG = 1/burst.
    double p_bg = 1.0 / mean_burst_frames;
    double p_gb = p_bg * 0.2 / 0.8;

    sim::Simulation simulation;
    net::Channel channel(simulation, "channel",
                         net::Channel::defaultBitRate, /*seed=*/42);

    NodeConfig sender_cfg;
    sender_cfg.address = 0x0010;
    sender_cfg.sensorSignal = [](sim::Tick) { return 42; };
    SensorNode sender(simulation, "sender", sender_cfg, &channel);

    NodeConfig fwd_cfg;
    fwd_cfg.address = 0x0011;
    fwd_cfg.sensorSignal = [](sim::Tick) { return 0; };
    SensorNode forwarder(simulation, "forwarder", fwd_cfg, &channel);

    Sink sink;
    channel.attach(&sink);

    apps::AppParams sender_params;
    sender_params.samplePeriodCycles = 10'000; // 10 Hz
    sender_params.dest = sinkAddr;
    sender_params.macRetries = mac_retries;
    apps::install(sender, apps::buildApp1(sender_params));

    apps::AppParams fwd_params;
    fwd_params.samplePeriodCycles = 0xFFFF;
    fwd_params.threshold = 255; // forwarding only, no own traffic
    fwd_params.dest = sinkAddr;
    fwd_params.macRetries = mac_retries;
    apps::install(forwarder, apps::buildApp3(fwd_params));

    fault::FaultInjector injector(simulation, "injector");
    injector.attachChannel(&channel);
    injector.runText(sim::csprintf("0.0 channel-ge %f %f 0.0 0.95\n",
                                   p_gb, p_bg));

    simulation.runForSeconds(runSeconds);
    channel.detach(&sink);

    Result r;
    r.prepared = sender.msgProc().framesPrepared();
    r.delivered = sink.delivered;
    r.retransmissions = sender.radio().retransmissions() +
                        forwarder.radio().retransmissions();
    r.txFailures =
        sender.radio().txFailures() + forwarder.radio().txFailures();
    double joules = (sender.totalAverageWatts() +
                     forwarder.totalAverageWatts()) *
                    runSeconds;
    r.joulesPerDelivered =
        r.delivered ? joules / static_cast<double>(r.delivered) : 0.0;
    return r;
}

} // namespace

int
main()
{
    bench::banner(
        "Reliability: delivery ratio & energy vs loss burstiness\n"
        "(two-hop, Gilbert-Elliott 20% bad state, 10 Hz samples, "
        "20 s per point)");

    std::printf("%-12s | %-25s | %-25s | %s\n", "mean fade",
                "fire-and-forget", "MAC: ACK + 3 retries", "MAC extras");
    std::printf("%-12s | %-12s %-12s | %-12s %-12s | %s\n", "(frames)",
                "delivery", "uJ/pkt", "delivery", "uJ/pkt",
                "retx / txfail");
    bench::rule();

    for (double burst : {1.0, 2.0, 4.0, 8.0}) {
        Result off = run(burst, 0);
        Result on = run(burst, 3);
        std::printf("%-12.0f | %9.1f %%  %8.3f    | %9.1f %%  %8.3f    "
                    "| %4llu / %llu\n",
                    burst, 100.0 * off.ratio(),
                    off.joulesPerDelivered * 1e6, 100.0 * on.ratio(),
                    on.joulesPerDelivered * 1e6,
                    static_cast<unsigned long long>(on.retransmissions),
                    static_cast<unsigned long long>(on.txFailures));
    }

    bench::rule();
    std::printf(
        "Delivery = unique sender frames reaching the base station.\n"
        "Energy counts both relay nodes (paper scope: EP + timer +\n"
        "msgproc + filter + uC), divided by delivered packets.\n");
    return 0;
}
