/**
 * @file
 * Additional cross-module integration tests: multi-node forwarding over a
 * real channel, application-level memory-bank gating, chained-timer
 * sampling, harvesting-powered nodes, failure injection (radio gated,
 * lossy channels), and whole-tree statistics plumbing.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "baseline/mica2_platform.hh"
#include "baseline/minios.hh"
#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "net/packet_sink.hh"
#include "power/harvest.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

TEST(MultiNode, ForwardingDeliversThroughTheChannel)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel");
    net::PacketSink sink(channel);

    // Sender: v1, addressed to the base station; forwarder: v3, quiet.
    NodeConfig sender_cfg;
    sender_cfg.address = 0x0010;
    sender_cfg.sensorSignal = [](sim::Tick) { return 55; };
    SensorNode sender(simulation, "sender", sender_cfg, &channel);

    NodeConfig fwd_cfg;
    fwd_cfg.address = 0x0011;
    fwd_cfg.clockHz = 100'000.0 * 1.00004; // crystal tolerance
    fwd_cfg.sensorSignal = [](sim::Tick) { return 1; };
    SensorNode forwarder(simulation, "forwarder", fwd_cfg, &channel);

    apps::AppParams params;
    params.samplePeriodCycles = 20'000; // 5 Hz
    apps::install(sender, apps::buildApp1(params));

    apps::AppParams fwd_params;
    fwd_params.samplePeriodCycles = 60'000;
    fwd_params.threshold = 255; // forwarder itself stays quiet
    apps::install(forwarder, apps::buildApp3(fwd_params));

    simulation.runForSeconds(4.0);

    EXPECT_GE(sender.radio().framesSent(), 18u);
    // The forwarder heard and re-flooded the sender's packets.
    EXPECT_GE(forwarder.msgProc().forwarded(), 10u);
    // The sink saw each packet once (originals + duplicates suppressed).
    EXPECT_GE(sink.uniqueDeliveries(), 18u);
    EXPECT_GE(sink.duplicates() + channel.collisions(), 5u);
    EXPECT_EQ(sink.deliveriesFrom(0x0010), sink.uniqueDeliveries());
}

TEST(MultiNode, LossyChannelLosesSomeDeliveries)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel",
                         net::Channel::defaultBitRate, 3);
    channel.setLossProbability(0.3);
    net::PacketSink sink(channel);

    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 10; };
    SensorNode node(simulation, "node", cfg, &channel);
    apps::AppParams params;
    params.samplePeriodCycles = 10'000; // 10 Hz
    apps::install(node, apps::buildApp1(params));

    simulation.runForSeconds(10.0);
    std::uint64_t sent = node.radio().framesSent();
    EXPECT_NEAR(static_cast<double>(sink.uniqueDeliveries()),
                0.7 * static_cast<double>(sent), 0.15 * sent);
}

TEST(MemoryGating, IsrCanGateScratchBanks)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 7; };
    SensorNode node(simulation, "node", cfg);

    // An ISR that stages scratch data in bank 7, then powers the bank
    // down — the paper's "memory segments holding temporary data".
    node.loadEpProgram(epAssemble(R"(
isr:
    WRITEI 0x0700, 9
    SWITCHOFF MEMBANK7
    TERMINATE
wake_isr:
    SWITCHON MEMBANK7
    WRITEI 0x0700, 4
    TERMINATE
.isr Timer0, isr
.isr Timer1, wake_isr
)"));
    node.irqBus().post(Irq::Timer0);
    simulation.runForSeconds(0.01);
    EXPECT_TRUE(node.memory().bankGated(7));

    // While gated, the bank's contents are gone and reads float high.
    EXPECT_EQ(node.memory().peek(0x0700), 0xFF);

    // A later ISR powers it back up (SWITCHON waits out the 950 ns
    // wakeup) and can use it again.
    node.irqBus().post(Irq::Timer1);
    simulation.runForSeconds(0.01);
    EXPECT_FALSE(node.memory().bankGated(7));
    EXPECT_EQ(node.memory().peek(0x0700), 4);
}

TEST(ChainedTimers, SecondScaleSamplingJustWorks)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 100; };
    SensorNode node(simulation, "node", cfg);

    apps::AppParams params;
    params.samplePeriodCycles = 100'000; // 1 s at 100 kHz: chained
    apps::install(node, apps::buildApp1(params));

    simulation.runForSeconds(10.5);
    EXPECT_GE(node.radio().framesSent(), 9u);
    EXPECT_LE(node.radio().framesSent(), 11u);
    // Two timers run in chained mode (the fast tick and the counter).
    EXPECT_EQ(node.timers().runningTimers(), 2u);
    // The chained pair still reports the flat ~1.44 uW timer power (the
    // chained counter is quiescent between predecessor completions).
    simulation.runForSeconds(20.0);
    EXPECT_NEAR(node.timers().averagePowerWatts(), 1.44e-6, 0.2e-6);
}

TEST(BlinkSense, NodeMicrobenchmarksBehave)
{
    {
        sim::Simulation simulation;
        NodeConfig cfg;
        SensorNode node(simulation, "node", cfg);
        apps::AppParams params;
        params.samplePeriodCycles = 5000;
        apps::install(node, apps::buildBlink(params));
        simulation.runForSeconds(1.0);
        // ~20 blinks; the "LED" scratch byte was written.
        EXPECT_GE(node.probes().count(Probe::EpIsrEnd), 19u);
        EXPECT_EQ(node.memory().peek(0x0700), 1);
        EXPECT_EQ(node.micro().wakeups(), 1u); // init only
    }
    {
        sim::Simulation simulation;
        NodeConfig cfg;
        cfg.sensorSignal = [](sim::Tick) { return 123; };
        SensorNode node(simulation, "node", cfg);
        apps::AppParams params;
        params.samplePeriodCycles = 5000;
        apps::install(node, apps::buildSense(params));
        simulation.runForSeconds(1.0);
        EXPECT_GE(node.sensor().samples(), 19u);
        // The filter (in statistic mode) holds the last sample, and no
        // pass/fail interrupts were generated.
        EXPECT_EQ(node.filter().decisions(), node.sensor().samples());
        EXPECT_EQ(node.radio().framesSent(), 0u);
    }
}

TEST(FailureInjection, GatedRadioMissesTraffic)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel");
    net::PacketSink sink(channel);

    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 100; };
    SensorNode node(simulation, "node", cfg, &channel);
    apps::AppParams params;
    params.samplePeriodCycles = 50'000;
    apps::install(node, apps::buildApp1(params)); // v1 gates its radio

    simulation.runForSeconds(2.0);

    // Traffic from elsewhere arrives while the node's radio is gated.
    net::Frame frame;
    frame.seq = 1;
    frame.src = 0x0042;
    frame.dest = 0x0000;
    frame.destPan = cfg.pan;
    sink.send(frame);
    simulation.runForSeconds(0.5);
    EXPECT_GE(node.radio().framesMissed(), 1u);
    EXPECT_EQ(node.msgProc().forwarded(), 0u);
}

TEST(Harvesting, NodeRunsOffTheVibrationBudget)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 100; };
    SensorNode node(simulation, "node", cfg);
    apps::AppParams params;
    params.samplePeriodCycles = 10'000;
    apps::install(node, apps::buildApp2(params));

    power::HarvestingSupply supply(
        simulation, "supply",
        std::make_unique<power::ConstantSource>(100e-6),
        power::EnergyStore(0.05, 0.025),
        [&node] { return node.totalAverageWatts(); },
        sim::secondsToTicks(0.1));
    supply.start();

    simulation.runForSeconds(120.0);
    EXPECT_EQ(supply.brownOuts(), 0u);
    EXPECT_GT(node.radio().framesSent(), 1000u);
    // The 100 uW budget covers the node many times over (paper target).
    EXPECT_GT(100e-6 / node.totalAverageWatts(), 20.0);
}

TEST(Stats, TreeContainsEveryComponent)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 100; };
    SensorNode node(simulation, "node", cfg);
    apps::AppParams params;
    params.samplePeriodCycles = 1000;
    apps::install(node, apps::buildApp2(params));
    simulation.runForSeconds(1.0);

    std::ostringstream os;
    simulation.dumpStats(os);
    std::string dump = os.str();
    for (const char *needle :
         {"node.bus.reads", "node.irqBus.posted", "node.ep.isrs",
          "node.ep.busyCycles", "node.timers.alarms",
          "node.filter.decisions", "node.msgProc.framesPrepared",
          "node.radio.framesSent", "node.sensor.samples",
          "node.sram.reads", "node.uC.wakeups",
          "node.powerCtrl.switchOns", "node.compressor.blocksEncoded"}) {
        EXPECT_NE(dump.find(needle), std::string::npos) << needle;
    }
}

TEST(MiniOs, TaskQueueDrainsCleanly)
{
    // After a long run, the MiniOS scheduler must leave no stuck tasks:
    // Q_COUNT returns to zero whenever the CPU sleeps.
    sim::Simulation simulation;
    baseline::Mica2Platform::Config cfg;
    cfg.sensorSignal = [](sim::Tick) { return 77; };
    baseline::Mica2Platform mica(simulation, "mica2", cfg);

    baseline::MiniOsParams params;
    params.softTimerCount = 3;
    baseline::Mica2App app =
        baseline::buildMica2App(baseline::Mica2AppKind::SendNoFilter,
                                params);
    mica.loadProgram(app.image);
    mica.start(app.entry);
    simulation.runForSeconds(5.0);

    EXPECT_GE(mica.framesSent(), 150u);
    ASSERT_TRUE(mica.cpu().sleeping());
    EXPECT_EQ(mica.read(0x0812), 0); // Q_COUNT (minios.cc RAM layout)
}

TEST(MiniOs, BlinkWalksTheLedCounter)
{
    sim::Simulation simulation;
    baseline::Mica2Platform mica(simulation, "mica2", {});
    baseline::MiniOsParams params;
    params.softTimerCount = 2;
    baseline::Mica2App app =
        baseline::buildMica2App(baseline::Mica2AppKind::Blink, params);
    mica.loadProgram(app.image);
    mica.start(app.entry);

    // The three LEDs display a 3-bit counter; sample successive values.
    std::vector<std::uint8_t> seen;
    for (int i = 0; i < 8; ++i) {
        simulation.runForSeconds(0.02); // one blink period
        seen.push_back(mica.ledValue() & 0x7);
    }
    // Strictly incrementing mod 8 from whatever phase we started at.
    for (std::size_t i = 1; i < seen.size(); ++i)
        EXPECT_EQ(seen[i], (seen[i - 1] + 1) % 8);
}
