/**
 * @file
 * Regression tests of the reproduction itself: every Table 4 row, the
 * SNAP ordering, the footprint comparison, the ~800 samples/s headline,
 * and the Figure 6 sweep's qualitative properties must keep matching the
 * paper as the code evolves.
 */

#include <gtest/gtest.h>

#include "compare/fig6.hh"
#include "compare/table4.hh"

using namespace ulp;
using namespace ulp::compare;

namespace {

/** |measured - paper| / paper. */
double
relativeError(double measured, double paper)
{
    return std::abs(measured - paper) / paper;
}

} // namespace

TEST(Table4, OurColumnsTrackThePaperClosely)
{
    // Our side of Table 4 is the architecture the paper specifies; hold
    // it to a tight tolerance.
    EXPECT_EQ(oursSendPathCycles(false), 102u);
    EXPECT_NEAR(static_cast<double>(oursSendPathCycles(true)), 127.0, 8.0);
    EXPECT_NEAR(static_cast<double>(oursRegularMsgCycles()), 165.0, 8.0);
    EXPECT_NEAR(static_cast<double>(oursIrregularMsgCycles()), 136.0, 8.0);
    EXPECT_NEAR(static_cast<double>(oursTimerChangeCycles()), 114.0, 10.0);
}

TEST(Table4, Mica2ColumnsTrackThePaperLoosely)
{
    // The baseline reproduces TinyOS-like software structure, not its
    // binary; hold its rows to 25 %.
    EXPECT_LT(relativeError(
                  static_cast<double>(mica2SendPathCycles(false)), 1522),
              0.25);
    EXPECT_LT(relativeError(
                  static_cast<double>(mica2SendPathCycles(true)), 1532),
              0.25);
    EXPECT_LT(relativeError(
                  static_cast<double>(mica2RegularMsgCycles()), 429),
              0.25);
    EXPECT_LT(relativeError(
                  static_cast<double>(mica2IrregularMsgCycles()), 234),
              0.25);
    // Timer change is 11 cycles in the paper; integer slack dominates.
    EXPECT_NEAR(static_cast<double>(mica2TimerChangeCycles()), 11.0, 4.0);
}

TEST(Table4, SpeedupShapeHolds)
{
    auto rows = table4();
    ASSERT_EQ(rows.size(), 6u);

    // Send paths: order-of-magnitude advantage (paper: 14.9x / 12.1x).
    EXPECT_GT(rows[0].speedup(), 10.0);
    EXPECT_GT(rows[1].speedup(), 10.0);
    // Message processing: a couple-x advantage (2.6x / 1.7x).
    EXPECT_GT(rows[2].speedup(), 1.5);
    EXPECT_LT(rows[2].speedup(), 4.0);
    EXPECT_GT(rows[3].speedup(), 1.2);
    EXPECT_LT(rows[3].speedup(), 2.5);
    // Timer change: the one row the commodity platform WINS (0.096x).
    EXPECT_LT(rows[4].speedup(), 0.3);

    // Filtering adds ~10 cycles on Mica2 and ~25 on ours (both small).
    EXPECT_LT(rows[1].mica2Cycles - rows[0].mica2Cycles, 40u);
    EXPECT_GT(rows[1].ourCycles, rows[0].ourCycles);
}

TEST(Snap, OrderingOursSnapMica2)
{
    std::uint64_t ours_blink = oursBlinkCycles();
    std::uint64_t ours_sense = oursSenseCycles();
    EXPECT_LT(ours_blink, snapBlinkCycles);
    EXPECT_LT(snapBlinkCycles, mica2BlinkCycles());
    EXPECT_LT(ours_sense, snapSenseCycles);
    EXPECT_LT(snapSenseCycles, mica2SenseCycles());
    // And within 2x of the paper's published values for our system.
    EXPECT_LE(ours_blink, 2 * paperOursBlinkCycles);
    EXPECT_LE(ours_sense, 2 * paperOursSenseCycles);
}

TEST(Footprint, OursIsTinyAndMica2IsMuchBigger)
{
    std::size_t ours = oursFootprintBytes();
    std::size_t mica = mica2FootprintBytes();
    EXPECT_LT(ours, 512u);  // paper: 180 B
    EXPECT_GT(mica, 1024u); // paper: 11558 B with the radio stack
    EXPECT_GT(mica, 4 * ours);
}

TEST(MaxRate, Near800SamplesPerSecond)
{
    double rate = maxSampleRateHz();
    EXPECT_GT(rate, 700.0);
    EXPECT_LT(rate, 900.0);
}

TEST(Fig6, TotalPowerShapeMatchesPaper)
{
    auto points = sweepFig6({1.0, 0.1, 0.01, 1e-3}, 1.0);
    ASSERT_EQ(points.size(), 4u);

    // Monotonically nonincreasing total power as duty falls.
    for (std::size_t i = 1; i < points.size(); ++i)
        EXPECT_LE(points[i].totalWatts, points[i - 1].totalWatts + 1e-9);

    // Saturated: within the paper's ~25 uW active budget.
    EXPECT_LT(points[0].totalWatts, 25e-6);
    EXPECT_GT(points[0].totalWatts, 5e-6);
    EXPECT_GT(points[0].epUtilization, 0.5);

    // "Drops below 2 uW for even reasonably high sample rates."
    EXPECT_LT(points[2].totalWatts, 2e-6);

    // The always-on timer dominates the floor at ~1.44 uW.
    EXPECT_NEAR(points[3].timerWatts, 1.44e-6, 0.15e-6);
    EXPECT_NEAR(points[3].totalWatts, 1.5e-6, 0.3e-6);
}

TEST(Fig6, AtmelIsTwoOrdersOfMagnitudeWorse)
{
    for (const auto &p : sweepFig6({0.1, 1e-3}, 1.0)) {
        double ratio = p.atmelWatts / p.totalWatts;
        EXPECT_GT(ratio, 100.0) << "duty " << p.dutyCycle;
        EXPECT_LT(ratio, 5000.0) << "duty " << p.dutyCycle;
    }
}

TEST(Fig6, Msp430PointMatchesPaperRange)
{
    Fig6Point p = runFig6Point(0.1, 1.0);
    // Paper: 113-192 uW at the 0.1 utilization point; our utilization-
    // normalized models give a similar window.
    EXPECT_GT(p.msp430LowWatts, 60e-6);
    EXPECT_LT(p.msp430HighWatts, 250e-6);
    EXPECT_LT(p.msp430LowWatts, p.msp430HighWatts);
    // And far above our node either way.
    EXPECT_GT(p.msp430LowWatts, 10 * p.totalWatts);
}

TEST(Fig6, NoEventsAreDroppedBelowSaturation)
{
    Fig6Point p = runFig6Point(0.1, 1.0);
    EXPECT_EQ(p.eventsDropped, 0u);
}
