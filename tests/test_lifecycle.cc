/**
 * @file
 * Survivable-mesh tests: node lifecycle (fail/revive/battery death),
 * in-simulation route repair, and the degradation metrics.
 *
 *  - mid-flight death: a frame already on the air when its transmitter
 *    dies completes (the medium owns in-flight state); a receiver that
 *    dies mid-flight misses it — on both the broadcast Channel and the
 *    SpatialMedium
 *  - the K = 1/2/4 oracle under churn: declared fail/revive events plus
 *    triggered route repair produce identical counters, a byte-identical
 *    merged stats tree, and an identical resilience report at every
 *    thread count — battery depletion and the energy-aware metric too
 *  - the ISSUE acceptance scenario: a 64-node grid loses its 3 busiest
 *    relays mid-run; with repair the steady-state delivery ratio
 *    recovers to >= 90% of the undisturbed run, without it the mesh
 *    stays degraded
 *  - repair is paid for: the re-taught node's microcontroller wakes up
 *    for the route-update command and the extra energy lands in its
 *    ledger
 *  - a revived node rejoins: reinstalling the factory image plus one
 *    repair round puts its frames back on the sink
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <climits>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/network.hh"
#include "net/channel.hh"
#include "net/medium.hh"
#include "net/relay.hh"
#include "net/spatial.hh"
#include "net/spatial_medium.hh"
#include "scenario/lower.hh"
#include "scenario/resilience.hh"
#include "scenario/scenario.hh"
#include "sim/event_queue.hh"
#include "sim/simulation.hh"

using namespace ulp;
using scenario::Placement;
using scenario::RadioModel;
using scenario::RepairPolicy;
using scenario::RouteMetric;
using scenario::Scenario;

namespace {

/** Counts intact and corrupted arrivals; never transmits. */
struct CountingRx : net::Transceiver
{
    unsigned frames = 0;
    unsigned corrupted = 0;

    void
    frameArrived(const net::Frame &, bool corr) override
    {
        if (corr)
            ++corrupted;
        else
            ++frames;
    }
};

net::Frame
dataFrame()
{
    net::Frame frame;
    frame.type = net::Frame::Type::Data;
    frame.seq = 1;
    frame.destPan = 0x22;
    frame.dest = 2;
    frame.src = 1;
    frame.payload = {0xAA, 0xBB, 0xCC};
    return frame;
}

/**
 * A 16-node spatial grid of reconfigurable (app4) relays routing to a
 * corner sink, with links strong enough that the undisturbed mesh
 * delivers cleanly and enough sampling stagger to avoid lockstep
 * collision bursts.
 */
Scenario
churnGrid(unsigned threads, double seconds)
{
    Scenario sc;
    sc.name = "churn";
    sc.seconds = seconds;
    sc.seed = 42;
    sc.threads = threads;
    sc.nodes.count = 16;
    sc.nodes.app = "app4";
    sc.nodes.period = 50000;
    sc.nodes.periodStagger = 797;
    sc.nodes.placement = Placement::Grid;
    sc.nodes.spacing = 30.0;
    sc.radio.model = RadioModel::Spatial;
    sc.radio.spatial.pathLossExponent = 2.8;
    sc.radio.spatial.sensitivityDbm = -90.0;
    sc.routes.sink = 0;
    sc.lifecycle.emplace();
    return sc;
}

struct ChurnRun
{
    core::Network::Counters counters;
    std::string stats;
    scenario::ResilienceReport report;
    std::string reportText;
};

ChurnRun
runChurn(const Scenario &sc)
{
    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    scenario::ResilienceManager manager(network, sc, low);

    ChurnRun out;
    out.report = manager.run();
    std::ostringstream stats;
    network.dumpStats(stats);
    out.stats = stats.str();
    std::ostringstream report;
    scenario::printResilienceReport(report, out.report);
    out.reportText = report.str();
    out.counters = network.counters();
    return out;
}

/** Subtree size of every node in the lowered route tree. */
std::vector<unsigned>
subtreeSizes(const scenario::Lowered &low)
{
    const unsigned N = static_cast<unsigned>(low.parents.size());
    std::vector<unsigned> sub(N, 1);
    for (unsigned d = low.maxDepth(); d > 0; --d) {
        for (unsigned i = 0; i < N; ++i) {
            if (low.depth[i] == d && low.parents[i] != UINT_MAX)
                sub[low.parents[i]] += sub[i];
        }
    }
    return sub;
}

// ---------------------------------------------------------------------------
// Mid-flight death: the medium owns in-flight state.
// ---------------------------------------------------------------------------

TEST(MidflightDeath, BroadcastTransmitterDetachCompletesFrame)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "chan");
    CountingRx tx, rx;
    channel.attach(&tx);
    channel.attach(&rx);

    sim::Tick end = channel.transmit(&tx, dataFrame());
    ASSERT_GT(end, simulation.curTick());

    // The transmitter dies halfway through its own frame.
    sim::EventFunctionWrapper kill([&] { channel.detach(&tx); }, "kill");
    simulation.eventq().schedule(&kill, (simulation.curTick() + end) / 2);
    simulation.runForSeconds(0.01);

    EXPECT_EQ(rx.frames, 1u) << "in-flight frame must survive its sender";
    EXPECT_EQ(rx.corrupted, 0u);
    EXPECT_EQ(channel.framesDelivered(), 1u);
}

TEST(MidflightDeath, BroadcastReceiverDetachMissesFrame)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "chan");
    CountingRx tx, rx, witness;
    channel.attach(&tx);
    channel.attach(&rx);
    channel.attach(&witness);

    sim::Tick end = channel.transmit(&tx, dataFrame());
    sim::EventFunctionWrapper kill([&] { channel.detach(&rx); }, "kill");
    simulation.eventq().schedule(&kill, (simulation.curTick() + end) / 2);
    simulation.runForSeconds(0.01);

    EXPECT_EQ(rx.frames, 0u) << "a dead receiver hears nothing";
    EXPECT_EQ(witness.frames, 1u) << "survivors still hear the frame";
}

TEST(MidflightDeath, SpatialTransmitterDetachCompletesFrame)
{
    sim::Simulation simulation;
    net::FrameRelay relay(1);
    net::SpatialConfig cfg;
    cfg.linkSeed = 7;
    net::SpatialModel model(cfg, {{0.0, 0.0}, {10.0, 0.0}});
    ASSERT_EQ(model.deliveryProb(0, 1), 1.0);
    net::SpatialMedium medium(simulation, "medium", relay, 0, model);

    CountingRx tx, rx;
    medium.attach(&tx);
    medium.bind(&tx, 0);
    medium.attach(&rx);
    medium.bind(&rx, 1);

    sim::Tick end = medium.transmit(&tx, dataFrame());
    sim::EventFunctionWrapper kill([&] { medium.detach(&tx); }, "kill");
    simulation.eventq().schedule(&kill, (simulation.curTick() + end) / 2);
    simulation.runForSeconds(0.01);

    EXPECT_EQ(rx.frames, 1u) << "in-flight frame must survive its sender";
    EXPECT_EQ(medium.framesDelivered(), 1u);
}

TEST(MidflightDeath, SpatialReceiverDetachMissesFrame)
{
    sim::Simulation simulation;
    net::FrameRelay relay(1);
    net::SpatialConfig cfg;
    cfg.linkSeed = 7;
    net::SpatialModel model(cfg, {{0.0, 0.0}, {10.0, 0.0}, {20.0, 0.0}});
    net::SpatialMedium medium(simulation, "medium", relay, 0, model);

    CountingRx tx, rx, witness;
    medium.attach(&tx);
    medium.bind(&tx, 0);
    medium.attach(&rx);
    medium.bind(&rx, 1);
    medium.attach(&witness);
    medium.bind(&witness, 2);

    sim::Tick end = medium.transmit(&tx, dataFrame());
    sim::EventFunctionWrapper kill([&] { medium.detach(&rx); }, "kill");
    simulation.eventq().schedule(&kill, (simulation.curTick() + end) / 2);
    simulation.runForSeconds(0.01);

    EXPECT_EQ(rx.frames, 0u) << "a dead receiver hears nothing";
    EXPECT_GE(witness.frames + witness.corrupted, 1u);
}

// ---------------------------------------------------------------------------
// The K = 1/2/4 oracle under churn.
// ---------------------------------------------------------------------------

TEST(LifecycleOracle, ChurnAndRepairAtEveryThreadCount)
{
    // Two deaths (one timed to land mid-traffic, not on a round tick),
    // one revive, triggered repair. threads = 1 is the oracle.
    auto make = [](unsigned threads) {
        Scenario sc = churnGrid(threads, 4.0);
        sc.lifecycle->fail = {{1, 1.013}, {5, 1.471}};
        sc.lifecycle->revive = {{5, 3.008}};
        sc.lifecycle->repair = RepairPolicy::Triggered;
        sc.lifecycle->repairPeriod = 0.5;
        return sc;
    };
    ChurnRun k1 = runChurn(make(1));
    ChurnRun k2 = runChurn(make(2));
    ChurnRun k4 = runChurn(make(4));

    EXPECT_GT(k1.counters.framesSent, 0u);
    EXPECT_GT(k1.report.repairUpdates, 0u);
    EXPECT_EQ(k1.counters, k2.counters);
    EXPECT_EQ(k1.counters, k4.counters);
    EXPECT_EQ(k1.stats, k2.stats);
    EXPECT_EQ(k1.stats, k4.stats);
    EXPECT_EQ(k1.reportText, k2.reportText);
    EXPECT_EQ(k1.reportText, k4.reportText);
}

TEST(LifecycleOracle, BatteryAndEnergyMetricAtEveryThreadCount)
{
    // Battery-driven supplies poll on each node's own shard; the
    // energy-aware metric reads reserves at synchronized control
    // points. Both must be thread-count-invariant.
    auto make = [](unsigned threads) {
        Scenario sc = churnGrid(threads, 4.0);
        sc.lifecycle->repair = RepairPolicy::Periodic;
        sc.lifecycle->repairPeriod = 0.5;
        sc.lifecycle->metric = RouteMetric::Energy;
        sc.lifecycle->energyWeight = 4.0;
        sc.lifecycle->battery = 0.02;
        sc.lifecycle->batteryInitial = 0.02;
        sc.lifecycle->harvest = 100e-6;
        sc.lifecycle->batteryInterval = 0.05;
        sc.lifecycle->reviveLevel = 0.25;
        return sc;
    };
    ChurnRun k1 = runChurn(make(1));
    ChurnRun k2 = runChurn(make(2));
    ChurnRun k4 = runChurn(make(4));

    EXPECT_GT(k1.counters.framesSent, 0u);
    EXPECT_EQ(k1.counters, k2.counters);
    EXPECT_EQ(k1.counters, k4.counters);
    EXPECT_EQ(k1.stats, k2.stats);
    EXPECT_EQ(k1.stats, k4.stats);
    EXPECT_EQ(k1.reportText, k2.reportText);
    EXPECT_EQ(k1.reportText, k4.reportText);
}

// ---------------------------------------------------------------------------
// The acceptance scenario: 64 nodes, 3 busiest relays die.
// ---------------------------------------------------------------------------

/** The 64-node acceptance grid (center sink, light clean load). */
Scenario
acceptanceGrid()
{
    Scenario sc;
    sc.name = "resilience-grid";
    sc.seconds = 8.0;
    sc.seed = 42;
    sc.nodes.count = 64;
    sc.nodes.app = "app4";
    sc.nodes.period = 60000;
    sc.nodes.periodStagger = 83;
    sc.nodes.placement = Placement::Grid;
    sc.nodes.spacing = 30.0;
    sc.radio.model = RadioModel::Spatial;
    sc.radio.spatial.pathLossExponent = 2.8;
    sc.radio.spatial.sensitivityDbm = -90.0;
    sc.routes.sink = 27;
    sc.lifecycle.emplace();
    return sc;
}

TEST(Resilience, BusiestRelayDeathRecoversWithRepair)
{
    // Identify the 3 busiest relays from the lowered route tree.
    Scenario base = acceptanceGrid();
    scenario::Lowered low = scenario::lower(base);
    std::vector<unsigned> sub = subtreeSizes(low);
    std::vector<unsigned> order;
    for (unsigned i = 0; i < base.nodes.count; ++i)
        if (i != *base.routes.sink)
            order.push_back(i);
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        return sub[a] != sub[b] ? sub[a] > sub[b] : a < b;
    });
    std::vector<scenario::LifecycleEvent> kills = {
        {order[0], 2.0}, {order[1], 2.0}, {order[2], 2.0}};
    // Busiest relays carry real subtrees, or the kill proves nothing.
    ASSERT_GE(sub[order[0]], 8u);
    ASSERT_GE(sub[order[2]], 4u);

    Scenario undisturbed = acceptanceGrid();
    ChurnRun clean = runChurn(undisturbed);

    Scenario broken = acceptanceGrid();
    broken.lifecycle->fail = kills;
    ChurnRun unrepaired = runChurn(broken);

    Scenario repaired = acceptanceGrid();
    repaired.lifecycle->fail = kills;
    repaired.lifecycle->repair = RepairPolicy::Triggered;
    repaired.lifecycle->repairPeriod = 0.5;
    ChurnRun fixed = runChurn(repaired);

    // The undisturbed mesh delivers cleanly; losing the busiest relays
    // without repair guts it; triggered repair restores >= 90% of the
    // undisturbed steady-state delivery ratio.
    EXPECT_GT(clean.report.steadyDeliveryRatio, 0.85);
    EXPECT_LT(unrepaired.report.steadyDeliveryRatio,
              0.6 * clean.report.steadyDeliveryRatio);
    EXPECT_GE(fixed.report.steadyDeliveryRatio,
              0.9 * clean.report.steadyDeliveryRatio);
    EXPECT_GT(fixed.report.repairUpdates, 0u);
    EXPECT_GT(fixed.report.postRepairDeliveries, 0u);
    EXPECT_EQ(fixed.report.firstDeathTick, sim::secondsToTicks(2.0));
    // The dense 30 m grid never partitions outright: degradation is
    // about routes through dead relays, not disconnection.
    EXPECT_EQ(unrepaired.report.firstPartitionTick, 0u);
}

// ---------------------------------------------------------------------------
// Repair is paid for through the modeled reconfiguration path.
// ---------------------------------------------------------------------------

TEST(Resilience, RepairEnergyLandsInTheLedger)
{
    // Kill the busiest 16-node relay; compare a child that must be
    // re-taught across repair-off and repair-on runs. The route-update
    // command wakes its microcontroller, and that wake costs energy.
    Scenario sc = churnGrid(1, 4.0);
    scenario::Lowered low = scenario::lower(sc);
    std::vector<unsigned> sub = subtreeSizes(low);
    unsigned busiest = UINT_MAX;
    for (unsigned i = 0; i < sc.nodes.count; ++i) {
        if (i == *sc.routes.sink)
            continue;
        if (busiest == UINT_MAX || sub[i] > sub[busiest])
            busiest = i;
    }
    ASSERT_GT(sub[busiest], 1u);
    unsigned child = UINT_MAX;
    for (unsigned i = 0; i < sc.nodes.count; ++i)
        if (low.parents[i] == busiest)
            child = std::min(child, i);
    ASSERT_NE(child, UINT_MAX);

    sc.lifecycle->fail = {{busiest, 1.5}};

    auto run = [&](RepairPolicy policy, std::uint64_t &wakes,
                   double &mcuJoules) {
        Scenario variant = sc;
        variant.lifecycle->repair = policy;
        variant.lifecycle->repairPeriod = 0.5;
        scenario::Lowered lowered = scenario::lower(variant);
        core::Network network(lowered.spec);
        scenario::ResilienceManager manager(network, variant, lowered);
        scenario::ResilienceReport report = manager.run();
        wakes = network.node(child).micro().wakeups();
        mcuJoules =
            network.node(child).micro().energyTracker().energyJoules();
        return report;
    };

    std::uint64_t wakesOff = 0, wakesOn = 0;
    double joulesOff = 0.0, joulesOn = 0.0;
    run(RepairPolicy::None, wakesOff, joulesOff);
    scenario::ResilienceReport repaired =
        run(RepairPolicy::Triggered, wakesOn, joulesOn);

    EXPECT_GT(repaired.repairUpdates, 0u);
    EXPECT_GT(wakesOn, wakesOff)
        << "the route-update command must wake the child's uC";
    EXPECT_GT(joulesOn, joulesOff)
        << "the repair wake must show up in the energy ledger";
}

TEST(Resilience, RevivedNodeRejoinsAndDelivers)
{
    // Node 5 dies before its first sample and revives mid-run: every
    // frame the sink sees from it is post-revive, through the
    // reinstalled factory image plus one repair round.
    Scenario sc = churnGrid(1, 5.0);
    sc.lifecycle->fail = {{5, 0.1}};
    sc.lifecycle->revive = {{5, 2.5}};
    sc.lifecycle->repair = RepairPolicy::Triggered;
    sc.lifecycle->repairPeriod = 0.5;

    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    scenario::ResilienceManager manager(network, sc, low);
    scenario::ResilienceReport report = manager.run();

    EXPECT_GT(report.repairUpdates, 0u);
    const auto &bySource =
        network.node(0).msgProc().localDeliveriesBySource();
    const std::uint16_t addr5 = low.addresses[5];
    ASSERT_TRUE(bySource.contains(addr5))
        << "the revived node's frames must reach the sink";
    EXPECT_GT(bySource.at(addr5), 0u);
    EXPECT_TRUE(network.node(5).alive());
}

} // namespace
