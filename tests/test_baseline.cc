/**
 * @file
 * Tests of the Mica2 baseline: MiniOS boots, samples, filters, builds
 * valid 802.15.4 frames with a software CRC that the hardware codec
 * accepts, forwards, deduplicates, and applies reconfigurations — and the
 * MARK instrumentation yields the Table 4 cycle segments.
 */

#include <gtest/gtest.h>

#include "baseline/mica2_platform.hh"
#include "baseline/minios.hh"
#include "net/frame.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::baseline;

namespace {

Mica2Platform::Config
testConfig(std::uint8_t value = 99)
{
    Mica2Platform::Config cfg;
    cfg.sensorSignal = [value](sim::Tick) { return value; };
    return cfg;
}

} // namespace

TEST(Mica2Baseline, App1SendsValidFrames)
{
    sim::Simulation simulation;
    Mica2Platform mica(simulation, "mica2", testConfig(123));

    MiniOsParams params;
    params.hwTimerLoad = 1152;  // ~10 ms hardware tick
    params.softTimerCount = 10; // ~100 ms sampling
    Mica2App app = buildMica2App(Mica2AppKind::SendNoFilter, params);
    mica.loadProgram(app.image);
    mica.start(app.entry);

    simulation.runForSeconds(1.05);

    EXPECT_GE(mica.framesSent(), 9u);
    EXPECT_LE(mica.framesSent(), 11u);

    // The software-built frame decodes as valid 802.15.4 with a correct
    // software CRC (checked by the platform's hardware deserializer).
    const net::Frame &frame = mica.lastTxFrame();
    EXPECT_EQ(frame.type, net::Frame::Type::Data);
    ASSERT_EQ(frame.payload.size(), 1u);
    EXPECT_EQ(frame.payload[0], 123);
    EXPECT_EQ(frame.src, 0x0001);

    // Send-path cycle segment exists: timer ISR entry -> TX command.
    EXPECT_FALSE(mica.markCycles(mark::timerIsrEntry).empty());
    EXPECT_FALSE(mica.markCycles(mark::sendDone).empty());
}

TEST(Mica2Baseline, App2FilterSuppressesLowSamples)
{
    sim::Simulation simulation;
    Mica2Platform mica(simulation, "mica2", testConfig(50));

    MiniOsParams params;
    params.threshold = 128; // 50 < 128: nothing passes
    Mica2App app = buildMica2App(Mica2AppKind::SendFilter, params);
    mica.loadProgram(app.image);
    mica.start(app.entry);

    simulation.runForSeconds(1.0);
    EXPECT_EQ(mica.framesSent(), 0u);

    // High samples do pass.
    sim::Simulation sim2;
    Mica2Platform mica2(sim2, "mica2b", testConfig(200));
    Mica2App app2 = buildMica2App(Mica2AppKind::SendFilter, params);
    mica2.loadProgram(app2.image);
    mica2.start(app2.entry);
    sim2.runForSeconds(1.05);
    EXPECT_GE(mica2.framesSent(), 9u);
}

TEST(Mica2Baseline, App3ForwardsAndDeduplicates)
{
    sim::Simulation simulation;
    Mica2Platform mica(simulation, "mica2", testConfig());

    MiniOsParams params;
    params.softTimerCount = 60000; // effectively disable sampling
    Mica2App app = buildMica2App(Mica2AppKind::Multihop, params);
    mica.loadProgram(app.image);
    mica.start(app.entry);
    simulation.runForSeconds(0.05);

    net::Frame frame;
    frame.seq = 9;
    frame.src = 0x0042;
    frame.dest = 0x0002; // elsewhere
    frame.destPan = 0x0022;
    frame.payload = {7};
    mica.injectFrame(frame);
    simulation.runForSeconds(0.05);

    EXPECT_EQ(mica.framesSent(), 1u);
    EXPECT_EQ(mica.lastTxFrame().seq, 9);
    EXPECT_EQ(mica.lastTxFrame().src, 0x0042);
    EXPECT_FALSE(mica.markCycles(mark::forwardDone).empty());

    // Duplicate: suppressed by the sequence cache.
    mica.injectFrame(frame);
    simulation.runForSeconds(0.05);
    EXPECT_EQ(mica.framesSent(), 1u);
    EXPECT_FALSE(mica.markCycles(mark::dropDone).empty());
}

TEST(Mica2Baseline, App4AppliesReconfigurations)
{
    sim::Simulation simulation;
    Mica2Platform mica(simulation, "mica2", testConfig(200));

    MiniOsParams params;
    params.softTimerCount = 10;
    Mica2App app = buildMica2App(Mica2AppKind::Reconfigurable, params);
    mica.loadProgram(app.image);
    mica.start(app.entry);
    simulation.runForSeconds(0.05);

    // Timer period change command (target 0, value 20).
    net::Frame cmd;
    cmd.type = net::Frame::Type::Command;
    cmd.seq = 1;
    cmd.src = 0x0077;
    cmd.dest = 0x0001;
    cmd.destPan = 0x0022;
    cmd.payload = {0, 0, 20};
    mica.injectFrame(cmd);
    simulation.runForSeconds(0.05);

    ASSERT_FALSE(mica.markCycles(mark::timerChangeEnd).empty());
    std::uint64_t tch = mica.cyclesBetweenMarks(mark::timerChangeStart,
                                                mark::timerChangeEnd);
    // The paper reports 11 cycles for the Mica2 timer change.
    EXPECT_GE(tch, 6u);
    EXPECT_LE(tch, 20u);

    // Threshold change (target 1, value 10).
    net::Frame cmd2 = cmd;
    cmd2.seq = 2;
    cmd2.payload = {1, 10, 0};
    mica.injectFrame(cmd2);
    simulation.runForSeconds(0.05);
    EXPECT_FALSE(mica.markCycles(mark::threshChangeEnd).empty());
}

TEST(Mica2Baseline, BlinkTogglesLed)
{
    sim::Simulation simulation;
    Mica2Platform mica(simulation, "mica2", testConfig());

    MiniOsParams params;
    params.hwTimerLoad = 1152;
    params.softTimerCount = 5;
    Mica2App app = buildMica2App(Mica2AppKind::Blink, params);
    mica.loadProgram(app.image);
    mica.start(app.entry);

    simulation.runForSeconds(0.3);
    EXPECT_GE(mica.markCycles(mark::blinkDone).size(), 4u);
}

TEST(Mica2Baseline, SenseComputesRunningAverage)
{
    sim::Simulation simulation;
    Mica2Platform mica(simulation, "mica2", testConfig(64));

    MiniOsParams params;
    params.softTimerCount = 2;
    Mica2App app = buildMica2App(Mica2AppKind::Sense, params);
    mica.loadProgram(app.image);
    mica.start(app.entry);

    // 16+ samples so the window fills with the constant 64.
    simulation.runForSeconds(2.0);
    ASSERT_GE(mica.markCycles(mark::senseDone).size(), 16u);
    EXPECT_EQ(mica.cpu().reg(12), 64); // final average in r12
}

TEST(Mica2Baseline, CpuSleepsBetweenEvents)
{
    sim::Simulation simulation;
    Mica2Platform mica(simulation, "mica2", testConfig());

    MiniOsParams params;
    Mica2App app = buildMica2App(Mica2AppKind::SendNoFilter, params);
    mica.loadProgram(app.image);
    mica.start(app.entry);

    simulation.runForSeconds(1.0);
    // Utilization is low, but power-save idle current dominates: average
    // CPU power sits near 0.33 mW, 1-2 orders above our node.
    EXPECT_LT(mica.cpuUtilization(), 0.1);
    EXPECT_GT(mica.cpuAveragePowerWatts(), 0.3e-3);
    EXPECT_LT(mica.cpuAveragePowerWatts(), 2e-3);
}
