/**
 * @file
 * Event-fabric tests: the peripheral event-linking fabric must service
 * scenario-declared routes without waking the event processor, and must
 * be invisible (byte-identical behaviour, zero energy) when no links are
 * armed.
 *
 *  - link vocabulary: names round-trip through parseSource/parseSink
 *  - [events] scenario section: parse, canonical print round-trip,
 *    per-node overrides, file:line diagnostics
 *  - linked delivery: a full sensing chain runs EP-silent
 *  - threshold comparator and §4.2.4 busy-sink overload drops
 *  - EP fallback: unlinked events reach the EP unchanged
 *  - the K = 1/2/4 oracle on a 64-node linked network
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/apps.hh"
#include "core/network.hh"
#include "core/sensor_node.hh"
#include "fabric/event_fabric.hh"
#include "scenario/lower.hh"
#include "scenario/scenario.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace ulp;
using fabric::Link;
using fabric::Sink;
using fabric::Source;
using scenario::Scenario;

namespace {

/** Parse @p text expecting a diagnostic that contains @p where. */
void
expectParseError(const std::string &text, const std::string &where)
{
    try {
        scenario::parseScenario(text, "bad.ini");
        FAIL() << "expected a parse error mentioning '" << where << "'";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(where), std::string::npos)
            << "diagnostic was: " << e.what();
    }
}

core::NodeConfig
nodeConfig(std::uint8_t sensor_value = 200)
{
    core::NodeConfig cfg;
    cfg.sensorSignal = [sensor_value](sim::Tick) { return sensor_value; };
    return cfg;
}

/** The canonical fully-linked sensing chain (ISSUE example). */
std::vector<Link>
sensingChain()
{
    return {{Source::Timer0Fire, Sink::AdcSample},
            {Source::AdcThreshold, Sink::MsgProcTx},
            {Source::MsgTxReady, Sink::RadioTx},
            {Source::RadioTxDone, Sink::RadioGate}};
}

/** The chain minus the timer entry: tests inject the ADC event. */
std::vector<Link>
txChain()
{
    return {{Source::AdcThreshold, Sink::MsgProcTx},
            {Source::MsgTxReady, Sink::RadioTx},
            {Source::RadioTxDone, Sink::RadioGate}};
}

} // namespace

// ---------------------------------------------------------------------------
// Link vocabulary
// ---------------------------------------------------------------------------

TEST(FabricLinks, SourceNamesRoundTrip)
{
    for (unsigned i = 0; i < fabric::numSources; ++i) {
        auto source = static_cast<Source>(i);
        auto parsed = fabric::parseSource(fabric::sourceName(source));
        ASSERT_TRUE(parsed.has_value()) << fabric::sourceName(source);
        EXPECT_EQ(*parsed, source);
    }
    EXPECT_FALSE(fabric::parseSource("adc.bogus").has_value());
}

TEST(FabricLinks, SinkNamesRoundTrip)
{
    for (unsigned i = 0; i < fabric::numSinks; ++i) {
        auto sink = static_cast<Sink>(i);
        auto parsed = fabric::parseSink(fabric::sinkName(sink));
        ASSERT_TRUE(parsed.has_value()) << fabric::sinkName(sink);
        EXPECT_EQ(*parsed, sink);
    }
    EXPECT_FALSE(fabric::parseSink("radio.bogus").has_value());
}

TEST(FabricLinks, ThresholdSourceSharesTheAdcRequestLine)
{
    // adc.done and adc.threshold are two dispositions of one request
    // line, so they can never both be armed.
    EXPECT_EQ(fabric::sourceIrq(Source::AdcDone),
              fabric::sourceIrq(Source::AdcThreshold));
    EXPECT_NE(fabric::sourceIrq(Source::AdcDone),
              fabric::sourceIrq(Source::FilterPass));
}

// ---------------------------------------------------------------------------
// [events] scenario section
// ---------------------------------------------------------------------------

TEST(FabricScenario, EventsSectionParsesAndRoundTrips)
{
    const std::string text = R"(
[scenario]
name = fabric
seconds = 0.2

[nodes]
count = 3
app = app1
period = 1000

[events]
link = timer.fire -> adc.sample
link = adc.threshold -> msgproc.tx

[node 1]
links = msgproc.txready -> radio.tx, radio.txdone -> radio.gate

[node 2]
links = none
)";
    Scenario sc = scenario::parseScenario(text, "fabric.ini");

    ASSERT_TRUE(sc.events.has_value());
    ASSERT_EQ(sc.events->links.size(), 2u);
    EXPECT_EQ(sc.events->links[0], (Link{Source::Timer0Fire, Sink::AdcSample}));
    EXPECT_EQ(sc.events->links[1],
              (Link{Source::AdcThreshold, Sink::MsgProcTx}));

    // [node 1] replaces the base set wholesale; [node 2] disarms.
    ASSERT_TRUE(sc.overrides.at(1).links.has_value());
    ASSERT_EQ(sc.overrides.at(1).links->size(), 2u);
    EXPECT_EQ(sc.overrides.at(1).links->at(0),
              (Link{Source::MsgTxReady, Sink::RadioTx}));
    ASSERT_TRUE(sc.overrides.at(2).links.has_value());
    EXPECT_TRUE(sc.overrides.at(2).links->empty());

    // Canonical print/parse identity.
    std::string canonical = scenario::printScenario(sc);
    EXPECT_EQ(scenario::parseScenario(canonical, "canonical.ini"), sc);
}

TEST(FabricScenario, LoweringArmsLinksPerNode)
{
    const std::string text = R"(
[scenario]
seconds = 0.1

[nodes]
count = 3
period = 1000

[events]
link = adc.threshold -> msgproc.tx

[node 1]
links = radio.txdone -> radio.gate

[node 2]
links = none
)";
    scenario::Lowered low =
        scenario::lower(scenario::parseScenario(text, "lower.ini"));
    ASSERT_EQ(low.spec.nodes.size(), 3u);
    ASSERT_EQ(low.spec.nodes[0].links.size(), 1u);
    EXPECT_EQ(low.spec.nodes[0].links[0],
              (Link{Source::AdcThreshold, Sink::MsgProcTx}));
    ASSERT_EQ(low.spec.nodes[1].links.size(), 1u);
    EXPECT_EQ(low.spec.nodes[1].links[0],
              (Link{Source::RadioTxDone, Sink::RadioGate}));
    EXPECT_TRUE(low.spec.nodes[2].links.empty());
}

TEST(FabricScenario, DiagnosticsNameTheFileAndLine)
{
    // Unknown source, with the declaring line number.
    expectParseError("[events]\nlink = adc.bogus -> msgproc.tx\n",
                     "bad.ini:2: 'link': unknown event source 'adc.bogus'");
    // Unknown sink.
    expectParseError("[events]\nlink = adc.done -> nowhere\n",
                     "unknown event sink 'nowhere'");
    // Malformed (no arrow).
    expectParseError("[events]\nlink = adc.done msgproc.tx\n",
                     "entries are 'source -> sink'");
    // Unknown key in the section.
    expectParseError("[events]\nroute = adc.done -> msgproc.tx\n",
                     "unknown key 'route' in [events]");
}

TEST(FabricScenario, DuplicateRequestLineIsRejected)
{
    expectParseError("[events]\n"
                     "link = adc.done -> msgproc.tx\n"
                     "link = adc.threshold -> probe.latch\n",
                     "'adc.threshold' routes the same request line as the "
                     "earlier 'adc.done' link");
    // Also inside a [node N] comma list.
    expectParseError("[nodes]\ncount = 2\n"
                     "[node 0]\n"
                     "links = timer.fire -> adc.sample, timer.fire -> ep\n",
                     "routes the same request line");
}

TEST(FabricScenario, MsgProcTxSinkRequiresADatumSource)
{
    expectParseError("[events]\nlink = timer.fire -> msgproc.tx\n",
                     "msgproc.tx needs a datum-carrying source");
    expectParseError("[nodes]\ncount = 2\n"
                     "[node 1]\nlinks = radio.txdone -> msgproc.tx\n",
                     "[node 1] link 'radio.txdone -> msgproc.tx'");
}

TEST(FabricScenario, ApplyScenarioKeyAppendsLinks)
{
    Scenario sc;
    scenario::applyScenarioKey(sc, "events.link",
                               "adc.threshold -> msgproc.tx", "override");
    scenario::applyScenarioKey(sc, "events.link",
                               "msgproc.txready -> radio.tx", "override");
    ASSERT_TRUE(sc.events.has_value());
    ASSERT_EQ(sc.events->links.size(), 2u);
    EXPECT_EQ(sc.events->links[1], (Link{Source::MsgTxReady, Sink::RadioTx}));

    sc.nodes.count = 2;
    scenario::applyScenarioKey(sc, "node.1.links", "none", "override");
    ASSERT_TRUE(sc.overrides.at(1).links.has_value());
    EXPECT_TRUE(sc.overrides.at(1).links->empty());
    scenario::validateScenario(sc, "override");
}

// ---------------------------------------------------------------------------
// Linked delivery (single node, no EP program installed: any event that
// fell through to the interrupt bus would find no ISR, so an EP-silent
// run proves the whole chain stayed inside the fabric)
// ---------------------------------------------------------------------------

TEST(FabricDelivery, LinkedChainRunsWithoutWakingTheEp)
{
    sim::Simulation simulation;
    core::SensorNode node(simulation, "node", nodeConfig(200));

    node.fabric().configure(sensingChain(), 0);
    EXPECT_TRUE(node.fabric().configured());

    // One timer alarm enters the chain; everything downstream (sample,
    // prepare, transmit, gate) is fabric-serviced.
    node.fabric().raise({core::Irq::Timer0});
    simulation.runForSeconds(0.01);

    EXPECT_EQ(node.radio().framesSent(), 1u);
    EXPECT_GE(node.sensor().samples(), 1u);
    EXPECT_EQ(node.fabric().linkedDelivered(), 4u);
    EXPECT_EQ(node.fabric().sinkBusyDrops(), 0u);
    EXPECT_EQ(node.ep().isrsExecuted(), 0u);
    EXPECT_EQ(node.micro().wakeups(), 0u);
    EXPECT_EQ(node.irqBus().dropped(), 0u);

    // The transmitted frame carries the sampled datum.
    const net::Frame &frame = node.radio().lastTxFrame();
    ASSERT_EQ(frame.payload.size(), 1u);
    EXPECT_EQ(frame.payload[0], 200);

    // Routed transitions are costed against the fabric's own ledger.
    EXPECT_GT(node.fabric().energyJoules(), 0.0);
}

TEST(FabricDelivery, ThresholdComparatorRetiresBelowThresholdEvents)
{
    sim::Simulation simulation;
    core::SensorNode node(simulation, "node", nodeConfig());

    node.fabric().configure(txChain(), 128);

    node.fabric().raise({core::Irq::AdcDone, 100, true});
    EXPECT_EQ(node.fabric().thresholdFiltered(), 1u);
    EXPECT_EQ(node.fabric().linkedDelivered(), 0u);

    node.fabric().raise({core::Irq::AdcDone, 150, true});
    simulation.runForSeconds(0.01);

    EXPECT_EQ(node.fabric().thresholdFiltered(), 1u);
    EXPECT_EQ(node.fabric().linkedDelivered(), 3u);
    EXPECT_EQ(node.radio().framesSent(), 1u);
    EXPECT_EQ(node.ep().isrsExecuted(), 0u);
}

TEST(FabricDelivery, BusySinkDropsTheEventPerOverloadRule)
{
    sim::Simulation simulation;
    core::SensorNode node(simulation, "node", nodeConfig());

    node.fabric().configure(txChain(), 0);

    // Two back-to-back events: the first starts CMD_PREPARE, so the
    // message processor is still busy when the second arrives — §4.2.4
    // says the later event is simply lost (and counted).
    node.fabric().raise({core::Irq::AdcDone, 200, true});
    node.fabric().raise({core::Irq::AdcDone, 210, true});
    EXPECT_EQ(node.fabric().sinkBusyDrops(), 1u);

    simulation.runForSeconds(0.01);
    EXPECT_EQ(node.radio().framesSent(), 1u);
    EXPECT_EQ(node.fabric().sinkBusyDrops(), 1u);
    EXPECT_EQ(node.fabric().linkedDelivered(), 3u);

    // Once the prepare completed, the sink accepts events again.
    node.fabric().raise({core::Irq::AdcDone, 220, true});
    simulation.runForSeconds(0.01);
    EXPECT_EQ(node.radio().framesSent(), 2u);
    EXPECT_EQ(node.fabric().sinkBusyDrops(), 1u);
}

TEST(FabricDelivery, ClearLinksRestoresTheZeroPowerPassThrough)
{
    sim::Simulation simulation;
    core::SensorNode node(simulation, "node", nodeConfig());

    node.fabric().configure(txChain(), 0);
    EXPECT_TRUE(node.fabric().configured());
    node.fabric().clearLinks();
    EXPECT_FALSE(node.fabric().configured());

    // With the CAM wiped the fabric is a wire to the interrupt bus.
    simulation.runForSeconds(0.001);
    EXPECT_EQ(node.fabric().energyJoules(), 0.0);
    EXPECT_EQ(node.fabric().averagePowerWatts(), 0.0);
}

TEST(FabricDelivery, ProbeLatchSinkRecordsAFabricProbe)
{
    sim::Simulation simulation;
    core::SensorNode node(simulation, "node", nodeConfig());
    node.probes().setKeepHistory(true);

    node.fabric().configure({{Source::Timer0Fire, Sink::ProbeLatch}}, 0);
    node.fabric().raise({core::Irq::Timer0});
    simulation.runForSeconds(0.001);

    EXPECT_EQ(node.probes().ticks(core::Probe::FabricLatch).size(), 1u);
    EXPECT_EQ(node.fabric().linkedDelivered(), 1u);
}

// ---------------------------------------------------------------------------
// EP fallback: unlinked events take the legacy interrupt-bus path
// ---------------------------------------------------------------------------

TEST(FabricFallback, UnconfiguredFabricLeavesTheEpPathUntouched)
{
    sim::Simulation simulation;
    core::SensorNode node(simulation, "node", nodeConfig(42));

    core::apps::AppParams params;
    params.samplePeriodCycles = 1000;
    core::apps::install(node, core::apps::buildApp1(params));
    simulation.runForSeconds(0.1);

    EXPECT_FALSE(node.fabric().configured());
    EXPECT_EQ(node.fabric().linkedDelivered(), 0u);
    EXPECT_GE(node.radio().framesSent(), 8u);
    EXPECT_GT(node.ep().isrsExecuted(), 0u);
    // An empty CAM is free: the legacy energy ledger is unchanged.
    EXPECT_EQ(node.fabric().energyJoules(), 0.0);
}

TEST(FabricFallback, PartialLinksMixWithEpServicing)
{
    // Only the TX-done gate is linked; the EP still services the timer
    // and tx-ready interrupts. Both paths must interleave cleanly.
    sim::Simulation simulation;
    core::SensorNode node(simulation, "node", nodeConfig(42));

    core::apps::AppParams params;
    params.samplePeriodCycles = 1000;
    core::apps::install(node, core::apps::buildApp1(params));
    node.fabric().configure({{Source::RadioTxDone, Sink::RadioGate}}, 0);
    simulation.runForSeconds(0.1);

    EXPECT_GE(node.radio().framesSent(), 8u);
    // Every TX-done was fabric-serviced; the EP saw timer + tx-ready.
    EXPECT_EQ(node.fabric().linkedDelivered(), node.radio().framesSent());
    EXPECT_GT(node.ep().isrsExecuted(), 0u);
    EXPECT_EQ(node.irqBus().dropped(), 0u);
}

// ---------------------------------------------------------------------------
// Network-level determinism and the EP-bypass payoff
// ---------------------------------------------------------------------------

namespace {

Scenario
linkedScenario(unsigned count, unsigned threads, bool linked)
{
    Scenario sc;
    sc.name = "fabric-oracle";
    sc.seconds = 0.3;
    sc.seed = 11;
    sc.threads = threads;
    sc.nodes.count = count;
    sc.nodes.app = "app1";
    sc.nodes.period = 2000;
    sc.nodes.signal = "const:200";
    if (linked) {
        sc.events.emplace();
        sc.events->links = sensingChain();
    }
    return sc;
}

core::Network::Counters
runScenario(const Scenario &sc)
{
    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    network.runForSeconds(low.seconds);
    return network.counters();
}

} // namespace

TEST(FabricNetwork, LinkedCountersAreThreadCountInvariant)
{
    core::Network::Counters k1 = runScenario(linkedScenario(64, 1, true));
    core::Network::Counters k2 = runScenario(linkedScenario(64, 2, true));
    core::Network::Counters k4 = runScenario(linkedScenario(64, 4, true));

    EXPECT_GT(k1.fabricLinked, 0u);
    EXPECT_GT(k1.framesSent, 0u);
    EXPECT_EQ(k1, k2);
    EXPECT_EQ(k1, k4);
}

TEST(FabricNetwork, LinkedNetworkWakesTheEpLessPerSensorAction)
{
    core::Network::Counters linked = runScenario(linkedScenario(64, 1, true));
    core::Network::Counters ep = runScenario(linkedScenario(64, 1, false));

    // Same workload, but every sensing-chain event is fabric-serviced:
    // the EP services (almost) nothing, and the kernel processes fewer
    // simulated events per sensor action.
    EXPECT_GT(linked.framesSent, 0u);
    EXPECT_GT(ep.epIsrs, 0u);
    EXPECT_LT(linked.epIsrs, ep.epIsrs);
    EXPECT_LT(linked.eventsProcessed / std::max<std::uint64_t>(
                  linked.framesSent, 1),
              ep.eventsProcessed / std::max<std::uint64_t>(ep.framesSent, 1));
    EXPECT_EQ(ep.fabricLinked, 0u);
}
