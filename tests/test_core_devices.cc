/**
 * @file
 * Unit tests for the core architecture's building blocks: the data bus
 * and its arbitration, the interrupt bus, the power controller, and each
 * slave accelerator (timers, threshold filter, sensor/ADC, message
 * processor, radio), exercised directly through their bus interfaces.
 */

#include <gtest/gtest.h>

#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "net/frame.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

namespace {

/**
 * Most slave tests are cleanest against a full node: it wires the buses,
 * the power controller, and the probes exactly as hardware would.
 */
struct DeviceTest : ::testing::Test
{
    sim::Simulation simulation;
    NodeConfig cfg;
    std::unique_ptr<SensorNode> node;

    void
    SetUp() override
    {
        cfg.sensorSignal = [](sim::Tick) { return 42; };
        node = std::make_unique<SensorNode>(simulation, "node", cfg);
    }

    DataBus &bus() { return node->dataBus(); }
    void advance(double seconds) { simulation.runForSeconds(seconds); }

    std::uint8_t
    rd(map::Addr addr)
    {
        return bus().read(addr);
    }
    void
    wr(map::Addr addr, std::uint8_t v)
    {
        bus().write(addr, v);
    }
};

} // namespace

// --------------------------------------------------------------------------
// Data bus
// --------------------------------------------------------------------------

TEST_F(DeviceTest, BusRoutesToSlavesByAddress)
{
    wr(0x0400, 0xAB); // main memory
    EXPECT_EQ(rd(0x0400), 0xAB);
    wr(map::filterBase + map::filterThresh, 77);
    EXPECT_EQ(rd(map::filterBase + map::filterThresh), 77);
    EXPECT_EQ(node->filter().threshold(), 77);
}

TEST_F(DeviceTest, UnmappedAccessReturnsFloatingBus)
{
    EXPECT_EQ(rd(0x9000), 0xFF);
    wr(0x9000, 1); // swallowed
    EXPECT_GE(static_cast<std::uint64_t>(
                  static_cast<const sim::stats::Scalar *>(
                      bus().findStat("unmapped"))
                      ->value()),
              2u);
}

TEST_F(DeviceTest, McuHoldsBusBlocksEp)
{
    EXPECT_TRUE(bus().availableForEp());
    bus().setMcuHoldsBus(true);
    EXPECT_FALSE(bus().availableForEp());
    bus().setMcuHoldsBus(false);
    EXPECT_TRUE(bus().availableForEp());
}

TEST(DataBusStandalone, OverlappingSlavesAreFatal)
{
    sim::Simulation simulation;
    DataBus bus(simulation, "bus");

    struct FakeSlave : BusSlave
    {
        AddrRange range;
        explicit FakeSlave(AddrRange r) : range(r) {}
        AddrRange addrRange() const override { return range; }
        std::uint8_t busRead(map::Addr) override { return 0; }
        void busWrite(map::Addr, std::uint8_t) override {}
    };

    FakeSlave a({0x1000, 0x100});
    FakeSlave b({0x1080, 0x100}); // overlaps a
    FakeSlave c({0x1100, 0x100}); // adjacent: fine
    bus.addSlave(&a);
    EXPECT_THROW(bus.addSlave(&b), sim::FatalError);
    bus.addSlave(&c);
}

// --------------------------------------------------------------------------
// Interrupt bus
// --------------------------------------------------------------------------

TEST_F(DeviceTest, InterruptArbitrationPicksLowestCode)
{
    InterruptBus &irq = node->irqBus();
    // Stop the EP from consuming: detach its listener by grabbing the
    // interrupts before the EP's next clock edge.
    irq.post(Irq::RadioRxDone);
    irq.post(Irq::Timer0);
    irq.post(Irq::MsgTxReady);

    auto first = irq.take();
    ASSERT_TRUE(first);
    EXPECT_EQ(*first, Irq::Timer0);
    EXPECT_EQ(*irq.take(), Irq::MsgTxReady);
    EXPECT_EQ(*irq.take(), Irq::RadioRxDone);
    EXPECT_FALSE(irq.take().has_value());
}

TEST_F(DeviceTest, ReassertingAnAssertedCodeDropsTheEvent)
{
    InterruptBus &irq = node->irqBus();
    irq.post(Irq::Timer0);
    irq.post(Irq::Timer0); // dropped: still asserted
    EXPECT_EQ(irq.dropped(), 1u);
    irq.take();
    irq.post(Irq::Timer0); // fine again
    EXPECT_EQ(irq.dropped(), 1u);
}

TEST_F(DeviceTest, InterruptOverloadCountsEveryDrop)
{
    // A device raising faster than the EP services it loses every
    // re-raise, and each loss is counted; other codes are unaffected.
    InterruptBus &irq = node->irqBus();
    irq.post(Irq::RadioRxDone);
    for (unsigned i = 0; i < 5; ++i)
        irq.post(Irq::RadioRxDone);
    EXPECT_EQ(irq.dropped(), 5u);

    irq.post(Irq::Timer0); // independent line still clean
    EXPECT_EQ(irq.dropped(), 5u);

    EXPECT_EQ(*irq.take(), Irq::Timer0);
    EXPECT_EQ(*irq.take(), Irq::RadioRxDone);
    EXPECT_FALSE(irq.take().has_value()); // the re-raises really vanished

    irq.post(Irq::RadioRxDone); // serviced: the line accepts again
    EXPECT_EQ(irq.dropped(), 5u);
}

// --------------------------------------------------------------------------
// Power controller
// --------------------------------------------------------------------------

TEST_F(DeviceTest, SwitchOnAcksAfterWakeupLatency)
{
    PowerController &pc = node->powerCtrl();
    pc.switchOff(ComponentId::Sensor);
    EXPECT_FALSE(pc.isOn(ComponentId::Sensor));

    sim::Tick ready = pc.switchOn(ComponentId::Sensor);
    EXPECT_EQ(ready, simulation.curTick() + cfg.slaveWakeupTicks);
    EXPECT_TRUE(pc.isOn(ComponentId::Sensor));

    // Already-on components ack immediately.
    EXPECT_EQ(pc.switchOn(ComponentId::Sensor), simulation.curTick());
}

TEST_F(DeviceTest, MemoryBanksAreGateableComponents)
{
    PowerController &pc = node->powerCtrl();
    node->memory().poke(0x0700, 0x12); // bank 7
    pc.switchOff(ComponentId::MemBank7);
    EXPECT_TRUE(node->memory().bankGated(7));
    pc.switchOn(ComponentId::MemBank7);
    EXPECT_FALSE(node->memory().bankGated(7));
}

TEST_F(DeviceTest, GatingDisabledMakesSwitchOffANoOp)
{
    node->powerCtrl().setGatingDisabled(true);
    node->powerCtrl().switchOff(ComponentId::Sensor);
    EXPECT_TRUE(node->powerCtrl().isOn(ComponentId::Sensor));
}

TEST(PowerControllerStandalone, DoubleRegistrationIsFatal)
{
    sim::Simulation simulation;
    PowerController pc(simulation, "pc");
    struct Dummy : PowerControllable
    {
        bool on = true;
        sim::Tick powerOn() override { on = true; return 0; }
        void powerOff() override { on = false; }
        bool powered() const override { return on; }
    } dummy;
    pc.registerComponent(ComponentId::Filter, &dummy);
    EXPECT_THROW(pc.registerComponent(ComponentId::Filter, &dummy),
                 sim::FatalError);
    EXPECT_THROW(pc.switchOn(ComponentId::Radio), sim::FatalError);
}

// --------------------------------------------------------------------------
// Timer unit
// --------------------------------------------------------------------------

TEST_F(DeviceTest, OneShotTimerFiresOnce)
{
    wr(map::timerBase + map::timerLoadHi, 0x00);
    wr(map::timerBase + map::timerLoadLo, 100);
    wr(map::timerBase + map::timerCtrl, TimerUnit::ctrlEnable);

    advance(0.0005); // 50 cycles: not yet
    EXPECT_EQ(node->probes().count(Probe::TimerAlarm), 0u);
    advance(0.0006); // past 100 cycles
    EXPECT_EQ(node->probes().count(Probe::TimerAlarm), 1u);
    EXPECT_FALSE(node->timers().timerRunning(0)); // auto-disabled
    advance(0.01);
    EXPECT_EQ(node->probes().count(Probe::TimerAlarm), 1u);
}

TEST_F(DeviceTest, ReloadTimerIsPeriodic)
{
    wr(map::timerBase + map::timerLoadLo, 100);
    wr(map::timerBase + map::timerCtrl,
       TimerUnit::ctrlEnable | TimerUnit::ctrlReload);
    advance(0.0105); // 1050 cycles: 10 firings
    EXPECT_EQ(node->probes().count(Probe::TimerAlarm), 10u);
}

TEST_F(DeviceTest, PauseRetainsCount)
{
    wr(map::timerBase + map::timerLoadLo, 200);
    wr(map::timerBase + map::timerCtrl, TimerUnit::ctrlEnable);
    advance(0.0005); // 50 cycles in
    wr(map::timerBase + map::timerCtrl, 0); // pause
    std::uint16_t count =
        static_cast<std::uint16_t>(
            (rd(map::timerBase + map::timerCountHi) << 8) |
            rd(map::timerBase + map::timerCountLo));
    EXPECT_NEAR(count, 150, 2);
    advance(0.1); // long pause: nothing fires
    EXPECT_EQ(node->probes().count(Probe::TimerAlarm), 0u);
}

TEST_F(DeviceTest, CountReadLatchesAcrossByteTransactions)
{
    // Regression: COUNT is read as two byte-wide bus transactions; if the
    // counter decrements through a 256 boundary between them, the combined
    // value tears (e.g. 0x0106 then 0x00F2 reads as 0x01F2 > load). The
    // high-byte read must latch the low byte.
    wr(map::timerBase + map::timerLoadHi, 0x01);
    wr(map::timerBase + map::timerLoadLo, 0x10); // load = 0x0110 (272)
    wr(map::timerBase + map::timerCtrl, TimerUnit::ctrlEnable);

    advance(0.0001); // 10 cycles in: count = 0x0106
    std::uint8_t hi = rd(map::timerBase + map::timerCountHi);
    EXPECT_EQ(hi, 0x01);

    advance(0.0002); // 20 more cycles: live count = 0x00F2
    std::uint8_t lo = rd(map::timerBase + map::timerCountLo);
    std::uint16_t combined = static_cast<std::uint16_t>((hi << 8) | lo);

    EXPECT_EQ(combined, 0x0106); // the value when the high byte was read
    EXPECT_LE(combined, 0x0110); // and never an impossible torn value
}

TEST_F(DeviceTest, ChainedTimerExtendsRange)
{
    // Timer 0: 100-cycle periodic tick; timer 1 counts 5 completions.
    wr(map::timerBase + map::timerLoadLo, 100);
    wr(map::timerBase + map::timerStride + map::timerLoadLo, 5);
    wr(map::timerBase + map::timerStride + map::timerCtrl,
       TimerUnit::ctrlEnable | TimerUnit::ctrlReload |
           TimerUnit::ctrlChain);
    wr(map::timerBase + map::timerCtrl,
       TimerUnit::ctrlEnable | TimerUnit::ctrlReload);

    // After 500 cycles + epsilon: timer1 fired once.
    advance(0.00501);
    std::uint64_t t0 = node->irqBus().posted();
    EXPECT_GT(t0, 0u);
    // Count Timer1 probes indirectly: the probe records all alarms; use
    // the interrupt bus stats via a fresh listener instead.
    advance(0.00500);
    // Two timer-1 periods = 10 timer-0 alarms + 2 timer-1 alarms.
    EXPECT_EQ(node->probes().count(Probe::TimerAlarm), 12u);
}

TEST_F(DeviceTest, TimerPowerFollowsRunningCount)
{
    EXPECT_EQ(node->timers().runningTimers(), 0u);
    advance(1.0);
    double idle = node->timers().averagePowerWatts();
    EXPECT_NEAR(idle, 24e-9, 5e-9); // block idle

    wr(map::timerBase + map::timerLoadLo, 100);
    wr(map::timerBase + map::timerCtrl,
       TimerUnit::ctrlEnable | TimerUnit::ctrlReload);
    advance(9.0);
    // One of four timers running: idle + (active-idle)/4 ~ 1.44 uW.
    EXPECT_NEAR(node->timers().averagePowerWatts(), 1.3e-6, 0.2e-6);
}

// --------------------------------------------------------------------------
// Threshold filter
// --------------------------------------------------------------------------

TEST_F(DeviceTest, FilterBoundaryIsInclusive)
{
    wr(map::filterBase + map::filterThresh, 100);
    wr(map::filterBase + map::filterCtrl, 0); // polled mode

    wr(map::filterBase + map::filterData, 100); // equal: passes
    advance(0.001);
    EXPECT_EQ(rd(map::filterBase + map::filterResult), 1);

    wr(map::filterBase + map::filterData, 99);
    advance(0.001);
    EXPECT_EQ(rd(map::filterBase + map::filterResult), 0);
    EXPECT_EQ(node->filter().decisions(), 2u);
    EXPECT_EQ(node->filter().passes(), 1u);
}

TEST_F(DeviceTest, FilterInterruptModePostsPassFail)
{
    wr(map::filterBase + map::filterThresh, 50);
    wr(map::filterBase + map::filterCtrl, ThresholdFilter::ctrlIrqMode);

    InterruptBus &irq = node->irqBus();
    sim::setQuiet(true); // the EP warns: no ISR bound in this bare node
    wr(map::filterBase + map::filterData, 60);
    advance(0.001);
    sim::setQuiet(false);
    // The EP warns (no ISR) and consumes; look at the posted counter.
    EXPECT_GE(irq.posted(), 1u);
    EXPECT_EQ(node->probes().count(Probe::FilterDecision), 1u);
}

TEST_F(DeviceTest, FilterDecisionTakesThreeCycles)
{
    wr(map::filterBase + map::filterCtrl, 0);
    wr(map::filterBase + map::filterThresh, 10);
    wr(map::filterBase + map::filterData, 20);
    sim::Tick start = simulation.curTick();
    advance(0.001);
    const auto &probes = node->probes();
    EXPECT_EQ(probes.last(Probe::FilterDecision) - start,
              node->clock().cyclesToTicks(3));
}

// --------------------------------------------------------------------------
// Sensor / ADC
// --------------------------------------------------------------------------

TEST_F(DeviceTest, SampleOnReadConverts)
{
    EXPECT_EQ(rd(map::sensorBase + map::sensorData), 42);
    EXPECT_EQ(node->sensor().samples(), 1u);
}

TEST_F(DeviceTest, AsyncAcquisitionPostsAdcDone)
{
    wr(map::sensorBase + map::sensorCtrl, 1);
    EXPECT_EQ(rd(map::sensorBase + map::sensorStatus), 0);
    advance(0.001);
    EXPECT_EQ(rd(map::sensorBase + map::sensorStatus), 1);
    EXPECT_EQ(rd(map::sensorBase + map::sensorData), 42);
    EXPECT_EQ(rd(map::sensorBase + map::sensorStatus), 0); // cleared
}

TEST_F(DeviceTest, NoiseIsClampedToByteRange)
{
    sim::Simulation sim2;
    NodeConfig noisy;
    noisy.sensorSignal = [](sim::Tick) { return 250; };
    noisy.sensorNoiseStddev = 40.0;
    SensorNode node2(sim2, "noisy", noisy);
    for (int i = 0; i < 200; ++i) {
        std::uint8_t v =
            node2.sensor().busRead(map::sensorData);
        EXPECT_LE(v, 255);
    }
}

// --------------------------------------------------------------------------
// Message processor
// --------------------------------------------------------------------------

namespace {

/** Stage a payload and issue CMD_PREPARE through the bus. */
void
prepareFrame(DeviceTest &t, std::initializer_list<std::uint8_t> payload)
{
    std::uint8_t len = 0;
    for (std::uint8_t b : payload)
        t.wr(static_cast<map::Addr>(map::msgBase + map::msgPayload + len++),
             b);
    t.wr(map::msgBase + map::msgPayloadLen, len);
    t.wr(map::msgBase + map::msgCtrl, MessageProcessor::cmdPrepare);
    t.advance(0.01);
}

} // namespace

TEST_F(DeviceTest, PreparesWellFormedFrames)
{
    wr(map::msgBase + map::msgDestHi, 0x12);
    wr(map::msgBase + map::msgDestLo, 0x34);
    prepareFrame(*this, {9, 8, 7});

    EXPECT_EQ(node->msgProc().framesPrepared(), 1u);
    std::uint8_t out_len = rd(map::msgBase + map::msgOutLen);
    EXPECT_EQ(out_len, net::Frame::overheadBytes + 3);

    std::vector<std::uint8_t> wire;
    for (unsigned i = 0; i < out_len; ++i)
        wire.push_back(rd(static_cast<map::Addr>(
            map::msgBase + map::msgOutBuf + i)));
    auto frame = net::Frame::deserialize(wire);
    ASSERT_TRUE(frame);
    EXPECT_EQ(frame->dest, 0x1234);
    EXPECT_EQ(frame->src, cfg.address);
    EXPECT_EQ(frame->destPan, cfg.pan);
    EXPECT_EQ(frame->payload, (std::vector<std::uint8_t>{9, 8, 7}));
    EXPECT_EQ(frame->seq, 0);

    prepareFrame(*this, {1});
    // Sequence number advances per frame.
    std::uint8_t out_len2 = rd(map::msgBase + map::msgOutLen);
    std::vector<std::uint8_t> wire2;
    for (unsigned i = 0; i < out_len2; ++i)
        wire2.push_back(rd(static_cast<map::Addr>(
            map::msgBase + map::msgOutBuf + i)));
    EXPECT_EQ(net::Frame::deserialize(wire2)->seq, 1);
}

namespace {

void
feedRxFrame(DeviceTest &t, const net::Frame &frame)
{
    std::vector<std::uint8_t> wire = frame.serialize();
    for (std::size_t i = 0; i < wire.size(); ++i)
        t.wr(static_cast<map::Addr>(map::msgBase + map::msgInBuf + i),
             wire[i]);
    t.wr(map::msgBase + map::msgInLen,
         static_cast<std::uint8_t>(wire.size()));
    t.wr(map::msgBase + map::msgCtrl, MessageProcessor::cmdProcessRx);
    t.advance(0.01);
}

} // namespace

TEST_F(DeviceTest, ClassifiesForwardLocalDuplicateIrregular)
{
    net::Frame foreign;
    foreign.seq = 5;
    foreign.src = 0x0099;
    foreign.dest = 0x0777; // elsewhere
    foreign.destPan = cfg.pan;
    foreign.payload = {1};

    feedRxFrame(*this, foreign);
    EXPECT_EQ(node->msgProc().forwarded(), 1u);
    EXPECT_EQ(rd(map::msgBase + map::msgOutLen), foreign.sizeBytes());

    feedRxFrame(*this, foreign); // same (src, seq): duplicate
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 1u);

    net::Frame local = foreign;
    local.seq = 6;
    local.dest = cfg.address;
    feedRxFrame(*this, local);
    EXPECT_EQ(node->msgProc().localDeliveries(), 1u);

    net::Frame cmd = foreign;
    cmd.seq = 7;
    cmd.type = net::Frame::Type::Command;
    feedRxFrame(*this, cmd);
    EXPECT_EQ(node->msgProc().irregulars(), 1u);
}

TEST_F(DeviceTest, MalformedRxIsDropped)
{
    for (unsigned i = 0; i < 12; ++i)
        wr(static_cast<map::Addr>(map::msgBase + map::msgInBuf + i), 0x5A);
    wr(map::msgBase + map::msgInLen, 12);
    wr(map::msgBase + map::msgCtrl, MessageProcessor::cmdProcessRx);
    advance(0.01);
    EXPECT_EQ(node->msgProc().forwarded(), 0u);
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 0u);
}

TEST_F(DeviceTest, CamEvictsOldestEntries)
{
    // Fill the 16-entry CAM with 17 distinct frames: the first is
    // evicted, so replaying it is NOT a duplicate.
    for (unsigned i = 0; i < 17; ++i) {
        net::Frame f;
        f.seq = static_cast<std::uint8_t>(i);
        f.src = 0x0200;
        f.dest = 0x0777;
        f.destPan = cfg.pan;
        feedRxFrame(*this, f);
    }
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 0u);

    net::Frame first;
    first.seq = 0;
    first.src = 0x0200;
    first.dest = 0x0777;
    first.destPan = cfg.pan;
    feedRxFrame(*this, first);
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 0u); // evicted: fresh
}

TEST_F(DeviceTest, CamWrapsAroundPastSixteenEntries)
{
    // Drive the FIFO well past its 16-entry capacity and check the
    // window semantics at every point: the newest 16 (src, seq) pairs
    // are always duplicates, anything older has been evicted.
    for (unsigned i = 0; i < 40; ++i) {
        net::Frame f;
        f.seq = static_cast<std::uint8_t>(i);
        f.src = 0x0200;
        f.dest = 0x0777;
        f.destPan = cfg.pan;
        feedRxFrame(*this, f);
    }
    EXPECT_EQ(node->msgProc().camSize(), MessageProcessor::camEntries);
    EXPECT_EQ(node->msgProc().forwarded(), 40u);
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 0u);

    // Frames 24..39 are the live window.
    net::Frame newest;
    newest.seq = 39;
    newest.src = 0x0200;
    newest.dest = 0x0777;
    newest.destPan = cfg.pan;
    feedRxFrame(*this, newest);
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 1u);

    net::Frame oldest_live = newest;
    oldest_live.seq = 25; // near the old edge, but still in the window
    feedRxFrame(*this, oldest_live);
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 2u);

    net::Frame evicted = newest;
    evicted.seq = 10;
    feedRxFrame(*this, evicted); // long gone: treated as fresh
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 2u);
    EXPECT_EQ(node->msgProc().forwarded(), 41u);

    // The explicit clear command empties the CAM entirely.
    wr(map::msgBase + map::msgCtrl, MessageProcessor::cmdClearCam);
    advance(0.01);
    EXPECT_EQ(node->msgProc().camSize(), 0u);
    feedRxFrame(*this, newest); // was a duplicate a moment ago
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 2u);
}

TEST_F(DeviceTest, MalformedRxDrivesTheMalformedStat)
{
    // A frame whose FCS does not match.
    for (unsigned i = 0; i < 12; ++i)
        wr(static_cast<map::Addr>(map::msgBase + map::msgInBuf + i), 0x5A);
    wr(map::msgBase + map::msgInLen, 12);
    wr(map::msgBase + map::msgCtrl, MessageProcessor::cmdProcessRx);
    advance(0.01);
    EXPECT_EQ(node->msgProc().malformed(), 1u);

    // A frame shorter than the 802.15.4 overhead cannot even be parsed.
    wr(map::msgBase + map::msgInLen, 5);
    wr(map::msgBase + map::msgCtrl, MessageProcessor::cmdProcessRx);
    advance(0.01);
    EXPECT_EQ(node->msgProc().malformed(), 2u);

    // Malformed input pollutes neither the CAM nor the classification
    // counters.
    EXPECT_EQ(node->msgProc().camSize(), 0u);
    EXPECT_EQ(node->msgProc().forwarded(), 0u);
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 0u);
    EXPECT_EQ(node->msgProc().localDeliveries(), 0u);
}

TEST_F(DeviceTest, MsgProcPowerOffClearsBuffersButKeepsCamAndConfig)
{
    wr(map::msgBase + map::msgDestHi, 0x12);
    wr(map::msgBase + map::msgDestLo, 0x34);

    // Leave residue everywhere: a prepared frame in the OUT buffer, junk
    // in the IN buffer, and a non-zero staged payload length.
    prepareFrame(*this, {9, 8, 7});
    EXPECT_GT(rd(map::msgBase + map::msgOutLen), 0);

    net::Frame foreign;
    foreign.seq = 5;
    foreign.src = 0x0099;
    foreign.dest = 0x0777;
    foreign.destPan = cfg.pan;
    feedRxFrame(*this, foreign);
    EXPECT_EQ(node->msgProc().forwarded(), 1u);

    wr(map::msgBase + map::msgPayloadLen, 5);

    node->powerCtrl().switchOff(ComponentId::MsgProc);
    node->powerCtrl().switchOn(ComponentId::MsgProc);
    advance(0.001);

    // Message buffers are SRAM: gone with the power. Stale residue must
    // not leak into the next frame.
    EXPECT_EQ(rd(map::msgBase + map::msgOutLen), 0);
    EXPECT_EQ(rd(map::msgBase + map::msgInLen), 0);
    EXPECT_EQ(rd(map::msgBase + map::msgPayloadLen), 0);
    EXPECT_EQ(rd(map::msgBase + map::msgInBuf), 0);
    EXPECT_EQ(rd(map::msgBase + map::msgOutBuf), 0);

    // Retention latches survive: addressing config and the dedup CAM
    // (the paper's duplicate suppression must span sleep periods).
    EXPECT_EQ(rd(map::msgBase + map::msgDestHi), 0x12);
    EXPECT_EQ(rd(map::msgBase + map::msgDestLo), 0x34);
    EXPECT_EQ(node->msgProc().camSize(), 1u);
    feedRxFrame(*this, foreign);
    EXPECT_EQ(node->msgProc().duplicatesDropped(), 1u);
}

TEST_F(DeviceTest, BatchingAppendsAndSignals)
{
    wr(map::msgBase + map::msgBatch, 3);
    wr(map::msgBase + map::msgPayloadLen, 0);
    wr(map::msgBase + map::msgAppend, 11);
    wr(map::msgBase + map::msgAppend, 22);
    EXPECT_EQ(rd(map::msgBase + map::msgPayloadLen), 2);
    EXPECT_EQ(node->msgProc().framesPrepared(), 0u);

    wr(map::msgBase + map::msgAppend, 33); // batch full
    // No ISR is installed: issue the prepare manually as the EP would.
    wr(map::msgBase + map::msgCtrl, MessageProcessor::cmdPrepare);
    advance(0.01);
    EXPECT_EQ(node->msgProc().framesPrepared(), 1u);
    EXPECT_EQ(rd(map::msgBase + map::msgPayloadLen), 0); // consumed

    std::uint8_t out_len = rd(map::msgBase + map::msgOutLen);
    EXPECT_EQ(out_len, net::Frame::overheadBytes + 3);
}

TEST_F(DeviceTest, CommandWhileBusyIsIgnored)
{
    sim::setQuiet(true);
    wr(map::msgBase + map::msgPayloadLen, 1);
    wr(map::msgBase + map::msgCtrl, MessageProcessor::cmdPrepare);
    wr(map::msgBase + map::msgCtrl, MessageProcessor::cmdPrepare); // busy
    advance(0.01);
    EXPECT_EQ(node->msgProc().framesPrepared(), 1u);
    sim::setQuiet(false);
}

// --------------------------------------------------------------------------
// Radio
// --------------------------------------------------------------------------

TEST_F(DeviceTest, TransmitsFifoContents)
{
    net::Frame frame;
    frame.seq = 3;
    frame.src = cfg.address;
    frame.dest = 0;
    frame.destPan = cfg.pan;
    frame.payload = {0x7E};
    std::vector<std::uint8_t> wire = frame.serialize();

    for (std::size_t i = 0; i < wire.size(); ++i)
        wr(static_cast<map::Addr>(map::radioBase + map::radioTxFifo + i),
           wire[i]);
    wr(map::radioBase + map::radioTxLen,
       static_cast<std::uint8_t>(wire.size()));
    wr(map::radioBase + map::radioCtrl, RadioDevice::cmdTx);

    EXPECT_EQ(rd(map::radioBase + map::radioStatus) &
                  RadioDevice::statusTxBusy,
              RadioDevice::statusTxBusy);
    advance(0.01);
    EXPECT_EQ(node->radio().framesSent(), 1u);
    EXPECT_EQ(node->radio().lastTxFrame(), frame);
    EXPECT_EQ(node->probes().count(Probe::RadioTxDone), 1u);
}

TEST_F(DeviceTest, ReceiveRequiresRxEnabled)
{
    net::Frame frame;
    frame.seq = 1;
    frame.src = 7;
    frame.dest = cfg.address;
    frame.destPan = cfg.pan;

    // RX off: frames over the channel interface are missed; direct
    // injection still works for tests (it bypasses the RX switch).
    node->radio().frameArrived(frame, false);
    EXPECT_EQ(node->radio().framesMissed(), 1u);

    wr(map::radioBase + map::radioCtrl, RadioDevice::cmdRxOn);
    node->radio().frameArrived(frame, false);
    EXPECT_EQ(node->radio().framesReceived(), 1u);
    EXPECT_EQ(rd(map::radioBase + map::radioRxLen), frame.sizeBytes());
}

TEST_F(DeviceTest, HardwareCrcRejectsCorruptedFrames)
{
    wr(map::radioBase + map::radioCtrl, RadioDevice::cmdRxOn);
    net::Frame frame;
    frame.seq = 1;
    frame.src = 7;
    node->radio().frameArrived(frame, /*corrupted=*/true);
    EXPECT_EQ(node->radio().crcErrors(), 1u);
    EXPECT_EQ(node->radio().framesReceived(), 0u);
}

TEST_F(DeviceTest, RxOverrunDropsSecondFrame)
{
    wr(map::radioBase + map::radioCtrl, RadioDevice::cmdRxOn);
    net::Frame frame;
    frame.seq = 1;
    frame.src = 7;
    node->radio().injectFrame(frame);
    frame.seq = 2;
    node->radio().injectFrame(frame); // FIFO still full
    EXPECT_EQ(node->radio().framesReceived(), 1u);
    EXPECT_GE(static_cast<std::uint64_t>(
                  static_cast<const sim::stats::Scalar *>(
                      node->radio().findStat("rxOverruns"))
                      ->value()),
              1u);
}

TEST_F(DeviceTest, MalformedTxStillTimesOut)
{
    sim::setQuiet(true);
    // Nonzero garbage: an all-zero FIFO would pass the CRC (crc(0s) = 0).
    for (unsigned i = 0; i < 12; ++i)
        wr(static_cast<map::Addr>(map::radioBase + map::radioTxFifo + i),
           0x5A);
    wr(map::radioBase + map::radioTxLen, 12);
    wr(map::radioBase + map::radioCtrl, RadioDevice::cmdTx);
    advance(0.01);
    // TxDone still arrives (hardware clocks bytes out), but nothing
    // valid was sent.
    EXPECT_EQ(node->probes().count(Probe::RadioTxDone), 1u);
    EXPECT_GE(static_cast<std::uint64_t>(
                  static_cast<const sim::stats::Scalar *>(
                      node->radio().findStat("txMalformed"))
                      ->value()),
              1u);
    sim::setQuiet(false);
}
