/**
 * @file
 * Property tests for the event queue's indexed d-ary heap: randomized
 * schedule/deschedule/reschedule/run sequences are replayed against a
 * reference std::multiset model of the (when, priority, seq) ordering
 * contract, plus directed edge cases for same-tick priority/FIFO order
 * and the reschedule-gets-a-fresh-sequence rule.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <set>
#include <tuple>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/logging.hh"

using namespace ulp::sim;

namespace {

/** An event that logs its id when processed. */
class RecordingEvent : public Event
{
  public:
    RecordingEvent(int id, std::vector<int> &log,
                   Priority priority = defaultPriority)
        : Event(priority), id(id), log(log)
    {}

    void process() override { log.push_back(id); }
    std::string description() const override
    {
        return "rec" + std::to_string(id);
    }

    const int id;

  private:
    std::vector<int> &log;
};

/** Reference model key: the documented total order, with the event id. */
using ModelKey = std::tuple<Tick, int, std::uint64_t, int>;

/**
 * Mirror of the queue's bookkeeping: the model assigns sequence numbers
 * in the same call order the queue does (every schedule and every
 * reschedule of a scheduled event consumes one).
 */
struct ReferenceModel
{
    std::multiset<ModelKey> entries;
    std::uint64_t nextSeq = 0;
    // id -> current key, for erase-on-deschedule.
    std::vector<ModelKey> keyOf;
    std::vector<bool> scheduled;

    explicit ReferenceModel(std::size_t pool)
        : keyOf(pool), scheduled(pool, false)
    {}

    void
    schedule(int id, Tick when, int priority)
    {
        ModelKey key{when, priority, nextSeq++, id};
        entries.insert(key);
        keyOf[id] = key;
        scheduled[id] = true;
    }

    void
    deschedule(int id)
    {
        entries.erase(keyOf[id]);
        scheduled[id] = false;
    }

    void
    reschedule(int id, Tick when, int priority)
    {
        if (scheduled[id])
            deschedule(id);
        schedule(id, when, priority);
    }

    int
    pop()
    {
        auto it = entries.begin();
        int id = std::get<3>(*it);
        scheduled[id] = false;
        entries.erase(it);
        return id;
    }
};

} // namespace

TEST(EventHeapProperty, MatchesMultisetModelOverRandomOps)
{
    constexpr int poolSize = 96;
    constexpr int iterations = 20'000;
    constexpr Event::Priority priorities[] = {
        Event::interruptPriority, -1, 0, 0, 0, 1, Event::maxPriority};

    EventQueue queue;
    ReferenceModel model(poolSize);
    std::vector<int> log;
    std::vector<std::unique_ptr<RecordingEvent>> pool;
    std::mt19937 rng(0xC0FFEE);

    for (int i = 0; i < poolSize; ++i) {
        pool.push_back(std::make_unique<RecordingEvent>(
            i, log, priorities[i % std::size(priorities)]));
    }

    auto pick = [&]() -> RecordingEvent & {
        return *pool[rng() % poolSize];
    };
    auto future = [&]() -> Tick {
        return queue.curTick() + rng() % 1'000;
    };

    for (int iter = 0; iter < iterations; ++iter) {
        unsigned op = rng() % 10;
        if (op < 4) {
            RecordingEvent &e = pick();
            Tick when = future();
            if (e.scheduled()) {
                queue.reschedule(&e, when);
                model.reschedule(e.id, when, e.priority());
            } else {
                queue.schedule(&e, when);
                model.schedule(e.id, when, e.priority());
            }
        } else if (op < 6) {
            RecordingEvent &e = pick();
            Tick when = future();
            queue.reschedule(&e, when);
            model.reschedule(e.id, when, e.priority());
        } else if (op == 6) {
            RecordingEvent &e = pick();
            if (e.scheduled()) {
                queue.deschedule(&e);
                model.deschedule(e.id);
            }
        } else if (op < 9) {
            if (!model.entries.empty()) {
                Tick expected_when = std::get<0>(*model.entries.begin());
                int expected = model.pop();
                ASSERT_TRUE(queue.runOne());
                ASSERT_EQ(log.back(), expected) << "iteration " << iter;
                ASSERT_EQ(queue.curTick(), expected_when);
            } else {
                ASSERT_FALSE(queue.runOne());
            }
        } else {
            Tick limit = queue.curTick() + rng() % 400;
            std::size_t before = log.size();
            queue.runUntil(limit);
            // The model pops everything due by the limit, in order.
            while (!model.entries.empty() &&
                   std::get<0>(*model.entries.begin()) <= limit) {
                int expected = model.pop();
                ASSERT_LT(before, log.size());
                ASSERT_EQ(log[before++], expected) << "iteration " << iter;
            }
            ASSERT_EQ(before, log.size());
        }

        ASSERT_EQ(queue.size(), model.entries.size());
        Tick expected_next = model.entries.empty()
                                 ? maxTick
                                 : std::get<0>(*model.entries.begin());
        ASSERT_EQ(queue.nextTick(), expected_next);
    }

    // Drain: the tail must also come out in model order.
    while (!model.entries.empty()) {
        int expected = model.pop();
        ASSERT_TRUE(queue.runOne());
        ASSERT_EQ(log.back(), expected);
    }
    EXPECT_TRUE(queue.empty());
    EXPECT_FALSE(queue.runOne());
}

TEST(EventHeap, SameTickSamePriorityIsFifoAtScale)
{
    EventQueue queue;
    std::vector<int> log;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    for (int i = 0; i < 64; ++i) {
        events.push_back(std::make_unique<RecordingEvent>(i, log));
        queue.schedule(events.back().get(), 100);
    }
    queue.runUntil(100);
    ASSERT_EQ(log.size(), 64u);
    for (int i = 0; i < 64; ++i)
        EXPECT_EQ(log[i], i);
}

TEST(EventHeap, RescheduleToSameTickMovesBehindFifoPeers)
{
    // The contract pins reschedule() to deschedule()+schedule() semantics:
    // a fresh sequence number, so the event drops behind same-key peers.
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent a(0, log), b(1, log);
    queue.schedule(&a, 100);
    queue.schedule(&b, 100);
    queue.reschedule(&a, 100);
    queue.runUntil(100);
    EXPECT_EQ(log, (std::vector<int>{1, 0}));
}

TEST(EventHeap, PriorityStillBeatsSequenceAfterReschedule)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent normal(0, log);
    RecordingEvent urgent(1, log, Event::interruptPriority);
    queue.schedule(&normal, 100);
    queue.schedule(&urgent, 200);
    queue.reschedule(&urgent, 100); // later seq, but lower priority value
    queue.runUntil(100);
    EXPECT_EQ(log, (std::vector<int>{1, 0}));
}

TEST(EventHeap, ReschedulePastPanics)
{
    EventQueue queue;
    std::vector<int> log;
    RecordingEvent e(0, log);
    queue.schedule(&e, 500);
    queue.runUntil(100);
    EXPECT_THROW(queue.reschedule(&e, 50), PanicError);
}

TEST(EventHeap, DescheduleFromWrongQueuePanics)
{
    EventQueue q1, q2;
    std::vector<int> log;
    RecordingEvent e(0, log);
    q1.schedule(&e, 10);
    EXPECT_THROW(q2.deschedule(&e), PanicError);
    q1.deschedule(&e); // still intact on its own queue
    EXPECT_FALSE(e.scheduled());
}

TEST(EventHeap, InterleavedGrowShrinkKeepsOrder)
{
    // Exercise removeAt() on interior slots while the heap grows and
    // shrinks through several capacity doublings.
    EventQueue queue;
    std::vector<int> log;
    std::vector<std::unique_ptr<RecordingEvent>> events;
    for (int i = 0; i < 512; ++i) {
        events.push_back(std::make_unique<RecordingEvent>(i, log));
        queue.schedule(events.back().get(), 1 + (i * 7919) % 4096);
    }
    // Deschedule every third event from the middle of the heap.
    for (int i = 0; i < 512; i += 3)
        queue.deschedule(events[i].get());
    queue.runUntil(8192);

    ASSERT_FALSE(log.empty());
    Tick last = 0;
    std::set<int> seen;
    for (int id : log) {
        EXPECT_NE(id % 3, 0);
        EXPECT_TRUE(seen.insert(id).second);
        Tick when = 1 + (id * 7919) % 4096;
        EXPECT_GE(when, last);
        last = when;
    }
    EXPECT_EQ(log.size(), 512u - 171u);
    EXPECT_TRUE(queue.empty());
}
