/**
 * @file
 * Unit tests for the power substrate: state-residency energy accounting
 * and the energy-harvesting supply models.
 */

#include <gtest/gtest.h>

#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "power/energy_tracker.hh"
#include "power/harvest.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::power;

namespace {

struct Fixture : ::testing::Test
{
    sim::Simulation simulation;
    sim::SimObject owner{simulation, "owner"};

    void advance(double seconds) { simulation.runForSeconds(seconds); }
};

} // namespace

using EnergyTrackerTest = Fixture;

TEST_F(EnergyTrackerTest, IntegratesStateResidency)
{
    PowerModel model{10e-6, 1e-6, 1e-9};
    EnergyTracker tracker(owner, model, PowerState::Idle);

    advance(1.0); // 1 s idle
    tracker.setState(PowerState::Active);
    advance(0.5); // 0.5 s active
    tracker.setState(PowerState::Gated);
    advance(2.0); // 2 s gated

    EXPECT_EQ(tracker.residency(PowerState::Idle),
              sim::secondsToTicks(1.0));
    EXPECT_EQ(tracker.residency(PowerState::Active),
              sim::secondsToTicks(0.5));
    EXPECT_EQ(tracker.residency(PowerState::Gated),
              sim::secondsToTicks(2.0));

    double expected = 1e-6 * 1.0 + 10e-6 * 0.5 + 1e-9 * 2.0;
    EXPECT_NEAR(tracker.energyJoules(), expected, expected * 1e-9);
    EXPECT_NEAR(tracker.averagePowerWatts(), expected / 3.5, 1e-12);
    EXPECT_NEAR(tracker.utilization(), 0.5 / 3.5, 1e-12);
}

TEST_F(EnergyTrackerTest, RedundantTransitionsAreFree)
{
    EnergyTracker tracker(owner, PowerModel{1e-6, 0, 0},
                          PowerState::Active);
    advance(1.0);
    tracker.setState(PowerState::Active); // no-op
    advance(1.0);
    EXPECT_EQ(tracker.residency(PowerState::Active),
              sim::secondsToTicks(2.0));
}

TEST_F(EnergyTrackerTest, RestartClearsHistory)
{
    EnergyTracker tracker(owner, PowerModel{1e-6, 1e-7, 0},
                          PowerState::Active);
    advance(1.0);
    tracker.restart();
    EXPECT_EQ(tracker.observed(), 0u);
    EXPECT_DOUBLE_EQ(tracker.energyJoules(), 0.0);
    advance(0.25);
    EXPECT_NEAR(tracker.energyJoules(), 1e-6 * 0.25, 1e-15);
}

TEST_F(EnergyTrackerTest, OpenStintCountsUpToNow)
{
    EnergyTracker tracker(owner, PowerModel{2e-6, 0, 0},
                          PowerState::Active);
    advance(0.5);
    // No setState since construction: the open stint must be included.
    EXPECT_NEAR(tracker.energyJoules(), 1e-6, 1e-15);
}

TEST_F(EnergyTrackerTest, SetModelMidRunLeavesResidencyIntact)
{
    EnergyTracker tracker(owner, PowerModel{10e-6, 1e-6, 1e-9},
                          PowerState::Active);
    advance(1.0);
    tracker.setState(PowerState::Idle);
    advance(0.5);

    tracker.setModel(PowerModel{20e-6, 2e-6, 2e-9});

    // Swapping the model (an ablation knob) must not disturb the
    // accumulated residency, the current state, or the open stint.
    EXPECT_EQ(tracker.state(), PowerState::Idle);
    EXPECT_EQ(tracker.residency(PowerState::Active),
              sim::secondsToTicks(1.0));
    EXPECT_EQ(tracker.residency(PowerState::Idle),
              sim::secondsToTicks(0.5));
    EXPECT_EQ(tracker.observed(), sim::secondsToTicks(1.5));

    advance(0.5); // the open Idle stint keeps accruing seamlessly
    EXPECT_EQ(tracker.residency(PowerState::Idle),
              sim::secondsToTicks(1.0));

    // Energy is re-integrated under the new model over the intact
    // residency — exactly what an ablation sweep expects.
    double expected = 20e-6 * 1.0 + 2e-6 * 1.0;
    EXPECT_NEAR(tracker.energyJoules(), expected, expected * 1e-9);
}

TEST(EnergyStore, ClampsAtBounds)
{
    EnergyStore store(1.0, 0.5);
    EXPECT_DOUBLE_EQ(store.deposit(0.3), 0.3);
    EXPECT_DOUBLE_EQ(store.deposit(0.4), 0.2); // clamped at capacity
    EXPECT_DOUBLE_EQ(store.level(), 1.0);
    EXPECT_DOUBLE_EQ(store.withdraw(0.6), 0.6);
    EXPECT_DOUBLE_EQ(store.withdraw(0.9), 0.4); // clamped at zero
    EXPECT_TRUE(store.empty());
}

TEST(HarvestSource, SinusoidalClampsDarkHalfCycle)
{
    SinusoidalSource source(100e-6, 10.0);
    // Peak at a quarter period.
    EXPECT_NEAR(source.powerAt(sim::secondsToTicks(2.5)), 100e-6, 1e-9);
    // Dark half-cycle clamps to zero.
    EXPECT_DOUBLE_EQ(source.powerAt(sim::secondsToTicks(7.5)), 0.0);
    for (double t = 0; t < 20.0; t += 0.37)
        EXPECT_GE(source.powerAt(sim::secondsToTicks(t)), 0.0);
}

TEST(HarvestingSupply, SustainsWhenHarvestExceedsLoad)
{
    sim::Simulation simulation;
    HarvestingSupply supply(
        simulation, "supply", std::make_unique<ConstantSource>(100e-6),
        EnergyStore(0.01, 0.005), [] { return 2e-6; },
        sim::secondsToTicks(0.1));
    supply.start();
    simulation.runForSeconds(100.0);

    EXPECT_EQ(supply.brownOuts(), 0u);
    EXPECT_FALSE(supply.brownedOut());
    EXPECT_NEAR(supply.consumedJoules(), 2e-6 * 100.0, 1e-6);
    // The store tops out at capacity.
    EXPECT_NEAR(supply.store().level(), 0.01, 1e-6);
}

TEST(HarvestingSupply, BrownsOutAndFiresCallback)
{
    sim::Simulation simulation;
    int callbacks = 0;
    HarvestingSupply supply(
        simulation, "supply", std::make_unique<ConstantSource>(10e-6),
        EnergyStore(1e-3, 1e-3), [] { return 100e-6; },
        sim::secondsToTicks(0.1));
    supply.onBrownOut([&] { ++callbacks; });
    supply.start();

    // Net drain 90 uW from 1 mJ: empty after ~11 s.
    simulation.runForSeconds(5.0);
    EXPECT_EQ(supply.brownOuts(), 0u);
    simulation.runForSeconds(10.0);
    EXPECT_EQ(supply.brownOuts(), 1u);
    EXPECT_EQ(callbacks, 1);
    EXPECT_TRUE(supply.brownedOut());
}

TEST(HarvestingSupply, ExactlyCoveredEpochIsNotABrownOut)
{
    // The store drains to exactly zero inside an epoch the load was
    // still fully covered: that is not a brown-out — starvation begins
    // on the next poll, when there is nothing left to withdraw.
    sim::Simulation simulation;
    int callbacks = 0;
    HarvestingSupply supply(
        simulation, "supply", std::make_unique<ConstantSource>(0.0),
        EnergyStore(1e-3, 1e-3), [] { return 1e-2; },
        sim::secondsToTicks(0.1));
    supply.onBrownOut([&] { ++callbacks; });
    supply.start();

    // One poll: 1e-2 W * 0.1 s consumes the full 1 mJ store.
    simulation.runForSeconds(0.15);
    EXPECT_EQ(supply.brownOuts(), 0u);
    EXPECT_FALSE(supply.brownedOut());
    EXPECT_DOUBLE_EQ(supply.store().level(), 0.0);

    // Next poll: the load cannot be covered at all.
    simulation.runForSeconds(0.1);
    EXPECT_EQ(supply.brownOuts(), 1u);
    EXPECT_EQ(callbacks, 1);
    EXPECT_TRUE(supply.brownedOut());
}

TEST(HarvestingSupply, ReviveOnHarvestHonorsRecoverLevel)
{
    // A browned-out node draws almost nothing, so without hysteresis it
    // would "recover" on the very next poll. With recover level 0.5 the
    // store must refill to half capacity before the recover callback
    // fires (and the load comes back).
    sim::Simulation simulation;
    int downs = 0, ups = 0;
    bool dead = false;
    HarvestingSupply supply(
        simulation, "supply", std::make_unique<ConstantSource>(100e-6),
        EnergyStore(1e-3, 0.2e-3), [&] { return dead ? 0.0 : 200e-6; },
        sim::secondsToTicks(0.1));
    supply.setRecoverLevel(0.5);
    supply.onBrownOut([&] {
        ++downs;
        dead = true;
    });
    double levelAtRecovery = 0.0;
    supply.onRecover([&] {
        ++ups;
        dead = false;
        levelAtRecovery = supply.store().level();
    });
    supply.start();

    // Net drain 100 uW from 0.2 mJ: dead after ~2 s.
    simulation.runForSeconds(3.0);
    EXPECT_EQ(downs, 1);
    EXPECT_EQ(ups, 0) << "covering a dead node's zero load is not recovery";
    EXPECT_TRUE(supply.brownedOut());

    // Harvest refills 100 uW toward the 0.5 mJ threshold (~3 s more).
    simulation.runForSeconds(2.0);
    EXPECT_EQ(ups, 0) << "store still below the recover level";
    simulation.runForSeconds(5.0);
    EXPECT_EQ(ups, 1);
    EXPECT_FALSE(supply.brownedOut());
    EXPECT_GE(levelAtRecovery, 0.5e-3 - 1e-9)
        << "recovery must wait for the 50% threshold";
}

TEST(HarvestingSupply, DepletionKillsTheNodeBeforeItCanAct)
{
    // Through a SensorNode: an emptied battery calls supplyDown, which
    // resets the masters first, then gates every slave and memory bank,
    // then leaves the medium — the node must end up fully dark, CAMs
    // wiped, with the death recorded on the probe channel.
    sim::Simulation simulation;
    core::NodeConfig cfg;
    cfg.address = 0x11;
    cfg.battery.capacityJoules = 1e-8;
    cfg.battery.initialJoules = 1e-8;
    cfg.battery.harvestWatts = 0.0;
    cfg.battery.pollSeconds = 0.01;
    core::SensorNode node(simulation, "node", cfg);
    core::apps::AppParams params;
    params.samplePeriodCycles = 2000;
    core::apps::install(node, core::apps::buildByName("app1", params));

    simulation.runForSeconds(2.0);

    ASSERT_TRUE(node.supply() != nullptr);
    EXPECT_GE(node.supply()->brownOuts(), 1u);
    EXPECT_FALSE(node.alive());
    EXPECT_EQ(node.probes().count(core::Probe::NodeDown), 1u);
    // Masters were forced down (reset/idle), not left running...
    EXPECT_FALSE(node.micro().powered());
    // ...and every bank lost its supply, so the program image is gone.
    for (unsigned bank = 0; bank < node.memory().numBanks(); ++bank)
        EXPECT_TRUE(node.memory().bankGated(bank)) << "bank " << bank;
    EXPECT_FALSE(node.radio().powered());
    // Dead is dead: no further samples, ISRs or transmissions accrue.
    const std::uint64_t isrs = node.ep().isrsExecuted();
    const std::uint64_t sent = node.radio().framesSent();
    simulation.runForSeconds(2.0);
    EXPECT_EQ(node.ep().isrsExecuted(), isrs);
    EXPECT_EQ(node.radio().framesSent(), sent);
}

TEST(HarvestingSupply, StopHaltsPolling)
{
    sim::Simulation simulation;
    HarvestingSupply supply(
        simulation, "supply", std::make_unique<ConstantSource>(10e-6),
        EnergyStore(1.0, 0.0), [] { return 0.0; },
        sim::secondsToTicks(0.1));
    supply.start();
    simulation.runForSeconds(1.0);
    double harvested = supply.harvestedJoules();
    EXPECT_GT(harvested, 0.0);
    supply.stop();
    simulation.runForSeconds(1.0);
    EXPECT_DOUBLE_EQ(supply.harvestedJoules(), harvested);
}

TEST(PowerModelStruct, WattsByState)
{
    PowerModel model{3.0, 2.0, 1.0};
    EXPECT_DOUBLE_EQ(model.watts(PowerState::Active), 3.0);
    EXPECT_DOUBLE_EQ(model.watts(PowerState::Idle), 2.0);
    EXPECT_DOUBLE_EQ(model.watts(PowerState::Gated), 1.0);
    EXPECT_STREQ(powerStateName(PowerState::Gated), "gated");
}
