/**
 * @file
 * Unit tests for the power substrate: state-residency energy accounting
 * and the energy-harvesting supply models.
 */

#include <gtest/gtest.h>

#include "power/energy_tracker.hh"
#include "power/harvest.hh"
#include "sim/sim_object.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::power;

namespace {

struct Fixture : ::testing::Test
{
    sim::Simulation simulation;
    sim::SimObject owner{simulation, "owner"};

    void advance(double seconds) { simulation.runForSeconds(seconds); }
};

} // namespace

using EnergyTrackerTest = Fixture;

TEST_F(EnergyTrackerTest, IntegratesStateResidency)
{
    PowerModel model{10e-6, 1e-6, 1e-9};
    EnergyTracker tracker(owner, model, PowerState::Idle);

    advance(1.0); // 1 s idle
    tracker.setState(PowerState::Active);
    advance(0.5); // 0.5 s active
    tracker.setState(PowerState::Gated);
    advance(2.0); // 2 s gated

    EXPECT_EQ(tracker.residency(PowerState::Idle),
              sim::secondsToTicks(1.0));
    EXPECT_EQ(tracker.residency(PowerState::Active),
              sim::secondsToTicks(0.5));
    EXPECT_EQ(tracker.residency(PowerState::Gated),
              sim::secondsToTicks(2.0));

    double expected = 1e-6 * 1.0 + 10e-6 * 0.5 + 1e-9 * 2.0;
    EXPECT_NEAR(tracker.energyJoules(), expected, expected * 1e-9);
    EXPECT_NEAR(tracker.averagePowerWatts(), expected / 3.5, 1e-12);
    EXPECT_NEAR(tracker.utilization(), 0.5 / 3.5, 1e-12);
}

TEST_F(EnergyTrackerTest, RedundantTransitionsAreFree)
{
    EnergyTracker tracker(owner, PowerModel{1e-6, 0, 0},
                          PowerState::Active);
    advance(1.0);
    tracker.setState(PowerState::Active); // no-op
    advance(1.0);
    EXPECT_EQ(tracker.residency(PowerState::Active),
              sim::secondsToTicks(2.0));
}

TEST_F(EnergyTrackerTest, RestartClearsHistory)
{
    EnergyTracker tracker(owner, PowerModel{1e-6, 1e-7, 0},
                          PowerState::Active);
    advance(1.0);
    tracker.restart();
    EXPECT_EQ(tracker.observed(), 0u);
    EXPECT_DOUBLE_EQ(tracker.energyJoules(), 0.0);
    advance(0.25);
    EXPECT_NEAR(tracker.energyJoules(), 1e-6 * 0.25, 1e-15);
}

TEST_F(EnergyTrackerTest, OpenStintCountsUpToNow)
{
    EnergyTracker tracker(owner, PowerModel{2e-6, 0, 0},
                          PowerState::Active);
    advance(0.5);
    // No setState since construction: the open stint must be included.
    EXPECT_NEAR(tracker.energyJoules(), 1e-6, 1e-15);
}

TEST_F(EnergyTrackerTest, SetModelMidRunLeavesResidencyIntact)
{
    EnergyTracker tracker(owner, PowerModel{10e-6, 1e-6, 1e-9},
                          PowerState::Active);
    advance(1.0);
    tracker.setState(PowerState::Idle);
    advance(0.5);

    tracker.setModel(PowerModel{20e-6, 2e-6, 2e-9});

    // Swapping the model (an ablation knob) must not disturb the
    // accumulated residency, the current state, or the open stint.
    EXPECT_EQ(tracker.state(), PowerState::Idle);
    EXPECT_EQ(tracker.residency(PowerState::Active),
              sim::secondsToTicks(1.0));
    EXPECT_EQ(tracker.residency(PowerState::Idle),
              sim::secondsToTicks(0.5));
    EXPECT_EQ(tracker.observed(), sim::secondsToTicks(1.5));

    advance(0.5); // the open Idle stint keeps accruing seamlessly
    EXPECT_EQ(tracker.residency(PowerState::Idle),
              sim::secondsToTicks(1.0));

    // Energy is re-integrated under the new model over the intact
    // residency — exactly what an ablation sweep expects.
    double expected = 20e-6 * 1.0 + 2e-6 * 1.0;
    EXPECT_NEAR(tracker.energyJoules(), expected, expected * 1e-9);
}

TEST(EnergyStore, ClampsAtBounds)
{
    EnergyStore store(1.0, 0.5);
    EXPECT_DOUBLE_EQ(store.deposit(0.3), 0.3);
    EXPECT_DOUBLE_EQ(store.deposit(0.4), 0.2); // clamped at capacity
    EXPECT_DOUBLE_EQ(store.level(), 1.0);
    EXPECT_DOUBLE_EQ(store.withdraw(0.6), 0.6);
    EXPECT_DOUBLE_EQ(store.withdraw(0.9), 0.4); // clamped at zero
    EXPECT_TRUE(store.empty());
}

TEST(HarvestSource, SinusoidalClampsDarkHalfCycle)
{
    SinusoidalSource source(100e-6, 10.0);
    // Peak at a quarter period.
    EXPECT_NEAR(source.powerAt(sim::secondsToTicks(2.5)), 100e-6, 1e-9);
    // Dark half-cycle clamps to zero.
    EXPECT_DOUBLE_EQ(source.powerAt(sim::secondsToTicks(7.5)), 0.0);
    for (double t = 0; t < 20.0; t += 0.37)
        EXPECT_GE(source.powerAt(sim::secondsToTicks(t)), 0.0);
}

TEST(HarvestingSupply, SustainsWhenHarvestExceedsLoad)
{
    sim::Simulation simulation;
    HarvestingSupply supply(
        simulation, "supply", std::make_unique<ConstantSource>(100e-6),
        EnergyStore(0.01, 0.005), [] { return 2e-6; },
        sim::secondsToTicks(0.1));
    supply.start();
    simulation.runForSeconds(100.0);

    EXPECT_EQ(supply.brownOuts(), 0u);
    EXPECT_FALSE(supply.brownedOut());
    EXPECT_NEAR(supply.consumedJoules(), 2e-6 * 100.0, 1e-6);
    // The store tops out at capacity.
    EXPECT_NEAR(supply.store().level(), 0.01, 1e-6);
}

TEST(HarvestingSupply, BrownsOutAndFiresCallback)
{
    sim::Simulation simulation;
    int callbacks = 0;
    HarvestingSupply supply(
        simulation, "supply", std::make_unique<ConstantSource>(10e-6),
        EnergyStore(1e-3, 1e-3), [] { return 100e-6; },
        sim::secondsToTicks(0.1));
    supply.onBrownOut([&] { ++callbacks; });
    supply.start();

    // Net drain 90 uW from 1 mJ: empty after ~11 s.
    simulation.runForSeconds(5.0);
    EXPECT_EQ(supply.brownOuts(), 0u);
    simulation.runForSeconds(10.0);
    EXPECT_EQ(supply.brownOuts(), 1u);
    EXPECT_EQ(callbacks, 1);
    EXPECT_TRUE(supply.brownedOut());
}

TEST(HarvestingSupply, StopHaltsPolling)
{
    sim::Simulation simulation;
    HarvestingSupply supply(
        simulation, "supply", std::make_unique<ConstantSource>(10e-6),
        EnergyStore(1.0, 0.0), [] { return 0.0; },
        sim::secondsToTicks(0.1));
    supply.start();
    simulation.runForSeconds(1.0);
    double harvested = supply.harvestedJoules();
    EXPECT_GT(harvested, 0.0);
    supply.stop();
    simulation.runForSeconds(1.0);
    EXPECT_DOUBLE_EQ(supply.harvestedJoules(), harvested);
}

TEST(PowerModelStruct, WattsByState)
{
    PowerModel model{3.0, 2.0, 1.0};
    EXPECT_DOUBLE_EQ(model.watts(PowerState::Active), 3.0);
    EXPECT_DOUBLE_EQ(model.watts(PowerState::Idle), 2.0);
    EXPECT_DOUBLE_EQ(model.watts(PowerState::Gated), 1.0);
    EXPECT_STREQ(powerStateName(PowerState::Gated), "gated");
}
