/**
 * @file
 * Scenario-engine tests: the declarative configuration path must be a
 * faithful front end for the simulator, not a second implementation.
 *
 *  - parse/print round-trip identity and line-numbered diagnostics
 *  - deterministic placement (grid geometry, seeded uniform draws)
 *  - lowering conventions: addresses, seeds, stagger, BFS route trees
 *  - end-to-end multi-hop: a 3-node relay chain delivers distant
 *    packets to the sink through the routing CAM
 *  - the K = 1/2/4 oracle on a 64-node spatial multi-hop network:
 *    identical counters and a byte-identical merged stats tree
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "core/network.hh"
#include "scenario/lower.hh"
#include "scenario/scenario.hh"
#include "sim/logging.hh"

using namespace ulp;
using scenario::Placement;
using scenario::RadioModel;
using scenario::RouteMode;
using scenario::Scenario;

namespace {

/** Parse @p text expecting a diagnostic that contains @p where. */
void
expectParseError(const std::string &text, const std::string &where)
{
    try {
        scenario::parseScenario(text, "bad.ini");
        FAIL() << "expected a parse error mentioning '" << where << "'";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(where), std::string::npos)
            << "diagnostic was: " << e.what();
    }
}

/** An N-node line with 40 m pitch: node i only hears i-1 and i+1. */
Scenario
chainScenario(unsigned count)
{
    Scenario sc;
    sc.name = "chain";
    sc.seconds = 5.0;
    sc.seed = 7;
    sc.nodes.count = count;
    sc.nodes.app = "app3";
    sc.nodes.period = 2000;
    sc.nodes.placement = Placement::Explicit;
    sc.radio.model = RadioModel::Spatial;
    sc.radio.spatial.pathLossExponent = 2.8;
    sc.radio.spatial.sensitivityDbm = -90.0;
    sc.routes.sink = 0;
    for (unsigned i = 0; i < count; ++i) {
        sc.overrides[i].x = 40.0 * i;
        sc.overrides[i].y = 0.0;
    }
    return sc;
}

/** A count-node square grid routing to a corner sink. */
Scenario
gridScenario(unsigned count, unsigned threads, double seconds)
{
    Scenario sc;
    sc.name = "grid";
    sc.seconds = seconds;
    sc.seed = 42;
    sc.threads = threads;
    sc.nodes.count = count;
    sc.nodes.app = "app3";
    sc.nodes.period = 2000;
    sc.nodes.placement = Placement::Grid;
    sc.nodes.spacing = 40.0;
    sc.radio.model = RadioModel::Spatial;
    sc.radio.spatial.pathLossExponent = 2.8;
    sc.radio.spatial.sensitivityDbm = -90.0;
    sc.routes.sink = 0;
    return sc;
}

core::Network::Counters
runScenario(const Scenario &sc, std::string *stats = nullptr)
{
    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    network.runForSeconds(low.seconds);
    if (stats) {
        std::ostringstream os;
        network.dumpStats(os);
        *stats = os.str();
    }
    return network.counters();
}

// ---------------------------------------------------------------------------
// Parse / print.
// ---------------------------------------------------------------------------

TEST(ScenarioParse, RoundTripIdentity)
{
    const char *text = R"(
        [scenario]
        name = round-trip      ; trailing comment
        seconds = 2.5
        seed = 99
        threads = 2

        [nodes]
        count = 9
        app = app4
        period = 1500
        threshold = 100
        signal = sine:60,5
        noise = 1.25
        placement = uniform
        area = 150

        [radio]
        model = spatial
        path-loss-exponent = 2.75
        sensitivity-dbm = -88.5

        [routes]
        sink = 8
        min-prob = 0.5

        [node 8]
        app = sink
        x = 75
        y = 75

        [node 3]
        period = 4000
        mac-retries = 3

        [fault]
        campaign = plan.txt
        node = 2

        [trace]
        out = trace-dir
        channels = Radio,Power
    )";
    Scenario sc = scenario::parseScenario(text, "round.ini");
    EXPECT_EQ(sc.name, "round-trip");
    EXPECT_EQ(sc.nodes.count, 9u);
    EXPECT_EQ(sc.radio.model, RadioModel::Spatial);
    ASSERT_TRUE(sc.routes.sink);
    EXPECT_EQ(*sc.routes.sink, 8u);
    ASSERT_TRUE(sc.fault);
    EXPECT_EQ(sc.fault->campaign, "plan.txt");
    ASSERT_TRUE(sc.overrides.at(3).macRetries);

    // The canonical printed form parses back to the identical value, and
    // printing is a fixed point.
    std::string printed = scenario::printScenario(sc);
    Scenario again = scenario::parseScenario(printed, "printed.ini");
    EXPECT_EQ(sc, again);
    EXPECT_EQ(printed, scenario::printScenario(again));
}

TEST(ScenarioParse, DefaultsRoundTrip)
{
    Scenario defaults;
    Scenario parsed = scenario::parseScenario(
        scenario::printScenario(defaults), "defaults.ini");
    EXPECT_EQ(defaults, parsed);
}

TEST(ScenarioParse, DiagnosticsCarryFileAndLine)
{
    expectParseError("[nodes]\ncount = twelve\n", "bad.ini:2:");
    expectParseError("count = 4\n", "bad.ini:1:");        // before a section
    expectParseError("[nodes]\n\n\nbogus = 1\n", "bad.ini:4:");
    expectParseError("[warp]\n", "bad.ini:1:");
    expectParseError("[nodes]\ncount\n", "bad.ini:2:");
    expectParseError("[radio]\nloss = 1.5\n", "[0, 1]");
    expectParseError("[nodes]\ncount = 2\n[node 5]\nperiod = 9\n",
                     "out of range");
    expectParseError("[scenario]\nthreads = 4\n[nodes]\ncount = 2\n",
                     "threads");
    expectParseError("[nodes]\nplacement = explicit\ncount = 2\n",
                     "no x/y");
}

TEST(ScenarioParse, DuplicateNodeSectionIsRejected)
{
    expectParseError(
        "[nodes]\ncount = 4\n[node 1]\nperiod = 9\n[node 1]\nx = 1\n",
        "bad.ini:5:");
    expectParseError(
        "[nodes]\ncount = 4\n[node 1]\nperiod = 9\n[node 1]\nx = 1\n",
        "duplicate [node 1]");
}

TEST(ScenarioParse, LifecycleDiagnosticsCarryFileAndLine)
{
    // Out-of-range node and out-of-range time point at the entry's own
    // line, even though [nodes]/[scenario] may be parsed later.
    expectParseError("[nodes]\ncount = 2\n[lifecycle]\nfail = 5@0.5\n",
                     "bad.ini:4:");
    expectParseError("[nodes]\ncount = 2\n[lifecycle]\nfail = 5@0.5\n",
                     "out of range");
    expectParseError(
        "[lifecycle]\nrevive = 1@3.0\n[nodes]\ncount = 2\n",
        "bad.ini:2:");
    expectParseError(
        "[lifecycle]\nrevive = 1@3.0\n[nodes]\ncount = 2\n",
        "past the end");
    expectParseError("[lifecycle]\nfail = 3\n", "node@seconds");
    expectParseError("[lifecycle]\nfail = 1@-0.5\n", "non-negative");
    expectParseError("[lifecycle]\nrepair = sometimes\n",
                     "none, periodic or triggered");
    expectParseError("[lifecycle]\nmetric = luck\n", "hops or energy");
    expectParseError("[lifecycle]\nrepair-period = 0\n", "positive");
    expectParseError("[lifecycle]\nwarp = 1\n", "unknown key");
}

TEST(ScenarioParse, LifecycleRoundTrip)
{
    const char *text = R"(
        [scenario]
        seconds = 6

        [nodes]
        count = 16
        app = app4

        [routes]
        sink = 0

        [lifecycle]
        fail = 1@1.5, 5@2
        revive = 5@4.25
        repair = triggered
        repair-period = 0.25
        metric = energy
        energy-weight = 2.5
        battery = 0.02
        battery-initial = 0.01
        harvest = 0.0001
        battery-interval = 0.05
        revive-level = 0.25
    )";
    Scenario sc = scenario::parseScenario(text, "lifecycle.ini");
    ASSERT_TRUE(sc.lifecycle);
    ASSERT_EQ(sc.lifecycle->fail.size(), 2u);
    EXPECT_EQ(sc.lifecycle->fail[1].node, 5u);
    EXPECT_EQ(sc.lifecycle->fail[1].atSeconds, 2.0);
    ASSERT_EQ(sc.lifecycle->revive.size(), 1u);
    EXPECT_EQ(sc.lifecycle->repair, scenario::RepairPolicy::Triggered);
    EXPECT_EQ(sc.lifecycle->metric, scenario::RouteMetric::Energy);
    EXPECT_EQ(sc.lifecycle->battery, 0.02);
    EXPECT_EQ(sc.lifecycle->reviveLevel, 0.25);

    std::string printed = scenario::printScenario(sc);
    Scenario again = scenario::parseScenario(printed, "printed.ini");
    EXPECT_EQ(sc, again);
    EXPECT_EQ(printed, scenario::printScenario(again));
}

// ---------------------------------------------------------------------------
// Lowering.
// ---------------------------------------------------------------------------

TEST(ScenarioLower, GridPlacementGeometry)
{
    Scenario sc = gridScenario(6, 1, 0.1);
    sc.nodes.gridCols = 3;
    scenario::Lowered low = scenario::lower(sc);
    ASSERT_EQ(low.spec.nodes.size(), 6u);
    EXPECT_DOUBLE_EQ(low.spec.nodes[4].x, 40.0); // row 1, col 1
    EXPECT_DOUBLE_EQ(low.spec.nodes[4].y, 40.0);
    EXPECT_DOUBLE_EQ(low.spec.nodes[2].x, 80.0); // row 0, col 2
    EXPECT_DOUBLE_EQ(low.spec.nodes[2].y, 0.0);
}

TEST(ScenarioLower, UniformPlacementIsSeedDeterministic)
{
    Scenario sc;
    sc.seed = 1234;
    sc.nodes.count = 32;
    sc.nodes.placement = Placement::Uniform;
    sc.nodes.area = 200.0;
    sc.routes.mode = RouteMode::None;

    scenario::Lowered a = scenario::lower(sc);
    scenario::Lowered b = scenario::lower(sc);
    sc.seed = 1235;
    scenario::Lowered c = scenario::lower(sc);

    bool moved = false;
    for (unsigned i = 0; i < 32; ++i) {
        EXPECT_EQ(a.spec.nodes[i].x, b.spec.nodes[i].x);
        EXPECT_EQ(a.spec.nodes[i].y, b.spec.nodes[i].y);
        EXPECT_GE(a.spec.nodes[i].x, 0.0);
        EXPECT_LE(a.spec.nodes[i].x, 200.0);
        EXPECT_GE(a.spec.nodes[i].y, 0.0);
        EXPECT_LE(a.spec.nodes[i].y, 200.0);
        moved |= a.spec.nodes[i].x != c.spec.nodes[i].x;
    }
    EXPECT_TRUE(moved); // a different seed really moves the nodes
}

TEST(ScenarioLower, LegacyAddressSeedAndStaggerConventions)
{
    Scenario sc;
    sc.seed = 50;
    sc.nodes.count = 3;
    sc.nodes.period = 1000;
    sc.routes.mode = RouteMode::None;
    sc.overrides[2].address = 77;
    sc.overrides[2].period = 123;

    scenario::Lowered low = scenario::lower(sc);
    EXPECT_EQ(low.spec.nodes[0].config.address, 1);
    EXPECT_EQ(low.spec.nodes[1].config.address, 2);
    EXPECT_EQ(low.spec.nodes[2].config.address, 77);
    EXPECT_EQ(low.spec.nodes[1].config.seed, 51u);
    EXPECT_EQ(low.spec.nodes[0].params.samplePeriodCycles, 1000u);
    EXPECT_EQ(low.spec.nodes[1].params.samplePeriodCycles, 1037u);
    EXPECT_EQ(low.spec.nodes[2].params.samplePeriodCycles, 123u);
}

TEST(ScenarioLower, ChainRoutesFollowTheLine)
{
    scenario::Lowered low = scenario::lower(chainScenario(4));
    EXPECT_EQ(low.depth, (std::vector<unsigned>{0, 1, 2, 3}));
    EXPECT_EQ(low.maxDepth(), 3u);
    // The sink runs the base-station app and holds no routes; each relay
    // holds one wildcard route toward its parent and sends there too.
    EXPECT_EQ(low.spec.nodes[0].app, "sink");
    EXPECT_TRUE(low.spec.nodes[0].routes.empty());
    for (unsigned i = 1; i < 4; ++i) {
        ASSERT_EQ(low.spec.nodes[i].routes.size(), 1u);
        EXPECT_EQ(low.spec.nodes[i].routes[0].origin,
                  core::MessageProcessor::routeWildcard);
        EXPECT_EQ(low.spec.nodes[i].routes[0].nextHop, i); // address i-1+1
        EXPECT_EQ(low.spec.nodes[i].params.dest, i);
    }
}

TEST(ScenarioLower, UnreachableNodeIsFatal)
{
    Scenario sc = chainScenario(3);
    sc.overrides[2].x = 5000.0; // far out of range of everyone
    EXPECT_THROW(scenario::lower(sc), sim::FatalError);
}

TEST(ScenarioLower, ExplicitRouteCycleIsFatal)
{
    Scenario sc = chainScenario(3);
    sc.routes.mode = RouteMode::Explicit;
    sc.overrides[1].nextHop = 2;
    sc.overrides[2].nextHop = 1;
    EXPECT_THROW(scenario::lower(sc), sim::FatalError);
}

// ---------------------------------------------------------------------------
// End-to-end multi-hop.
// ---------------------------------------------------------------------------

TEST(ScenarioMultihop, ThreeHopChainDeliversToSink)
{
    Scenario sc = chainScenario(4);
    sc.seconds = 3.0;
    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    network.runForSeconds(sc.seconds);

    const core::MessageProcessor &mp = network.node(0).msgProc();
    EXPECT_GT(mp.localDeliveries(), 0u);
    // Every origin's packets arrive — including node 3's, which can only
    // get here through the routing CAMs of nodes 2 and 1 (addresses are
    // 1 + index, so origin addresses are 2, 3, 4).
    const auto &by_source = mp.localDeliveriesBySource();
    ASSERT_EQ(by_source.size(), 3u);
    EXPECT_GT(by_source.at(2), 0u);
    EXPECT_GT(by_source.at(3), 0u);
    EXPECT_GT(by_source.at(4), 0u);
    // Relays re-address rather than flood: node 1 forwarded traffic.
    EXPECT_GT(network.node(1).msgProc().forwarded(), 0u);
}

TEST(ScenarioMultihop, ThreadCountOracle)
{
    // The acceptance oracle: a 64-node spatial multi-hop grid at
    // K = 1, 2, 4 shards — identical headline counters and a
    // byte-identical merged statistics tree.
    std::string s1, s2, s4;
    core::Network::Counters k1 = runScenario(gridScenario(64, 1, 0.4), &s1);
    core::Network::Counters k2 = runScenario(gridScenario(64, 2, 0.4), &s2);
    core::Network::Counters k4 = runScenario(gridScenario(64, 4, 0.4), &s4);

    EXPECT_GT(k1.framesSent, 0u);
    EXPECT_GT(k1.framesDelivered, 0u);
    EXPECT_EQ(k1, k2);
    EXPECT_EQ(k1, k4);
    EXPECT_EQ(s1, s2);
    EXPECT_EQ(s1, s4);
}

} // namespace
