/**
 * @file
 * Tests of the banked SRAM: functional reads/writes, per-bank Vdd gating
 * with state loss and the wakeup window, power accounting against the
 * Table 3 figures, and failure injection (accesses to gated or waking
 * banks).
 */

#include <gtest/gtest.h>

#include "memory/sram.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::memory;

namespace {

struct SramTest : ::testing::Test
{
    sim::Simulation simulation;
    Sram::Config cfg{};
    Sram sram{simulation, "sram", cfg};

    void advance(double seconds) { simulation.runForSeconds(seconds); }
};

} // namespace

TEST_F(SramTest, ReadBackAcrossBanks)
{
    for (unsigned addr = 0; addr < 2048; addr += 97)
        sram.write(static_cast<std::uint16_t>(addr),
                   static_cast<std::uint8_t>(addr * 7));
    for (unsigned addr = 0; addr < 2048; addr += 97) {
        EXPECT_EQ(sram.read(static_cast<std::uint16_t>(addr)),
                  static_cast<std::uint8_t>(addr * 7));
    }
    EXPECT_EQ(sram.numBanks(), 8u);
    EXPECT_EQ(sram.bankOf(0x00FF), 0u);
    EXPECT_EQ(sram.bankOf(0x0100), 1u);
    EXPECT_EQ(sram.bankOf(0x07FF), 7u);
}

TEST_F(SramTest, OutOfRangePanics)
{
    EXPECT_THROW(sram.read(0x0800), sim::PanicError);
    EXPECT_THROW(sram.poke(0xFFFF, 1), sim::PanicError);
}

TEST_F(SramTest, GatingLosesContentsAndReturnsGarbage)
{
    sram.write(0x0300, 0xAB); // bank 3
    sram.gateBank(3);
    EXPECT_TRUE(sram.bankGated(3));

    // Reading a gated bank returns bus idle-high and is counted.
    EXPECT_EQ(sram.read(0x0300), 0xFF);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  static_cast<const sim::stats::Scalar *>(
                      sram.findStat("gatedAccesses"))
                      ->value()),
              1u);

    sram.ungateBank(3);
    advance(1e-5); // past the 950 ns wakeup
    EXPECT_NE(sram.read(0x0300), 0xAB); // contents were lost
}

TEST_F(SramTest, WakeupWindowBlocksAccess)
{
    sram.gateBank(2);
    advance(0.001);
    sram.ungateBank(2);
    EXPECT_FALSE(sram.bankReady(2));
    EXPECT_EQ(sram.bankReadyAt(2), simulation.curTick() + 950);

    // An access inside the 950 ns window fails and is counted.
    sram.read(0x0200);
    EXPECT_EQ(static_cast<std::uint64_t>(
                  static_cast<const sim::stats::Scalar *>(
                      sram.findStat("notReadyAccesses"))
                      ->value()),
              1u);

    simulation.runFor(950);
    EXPECT_TRUE(sram.bankReady(2));
    sram.write(0x0200, 0x5A);
    EXPECT_EQ(sram.read(0x0200), 0x5A);
}

TEST_F(SramTest, RedundantGateOpsAreIdempotent)
{
    sram.gateBank(1);
    sram.gateBank(1);
    sram.ungateBank(1);
    sram.ungateBank(1);
    EXPECT_FALSE(sram.bankGated(1));
}

TEST_F(SramTest, LoadImageBoundsChecked)
{
    std::vector<std::uint8_t> image(16, 0x11);
    sram.loadImage(0x07F0, image);
    EXPECT_EQ(sram.peek(0x07FF), 0x11);
    std::vector<std::uint8_t> too_big(32, 0);
    EXPECT_THROW(sram.loadImage(0x07F0, too_big), sim::FatalError);
}

TEST_F(SramTest, IdlePowerMatchesTable5MemoryRow)
{
    advance(1.0);
    // 8 idle banks * 409 pW ~ 3.3 nW (Table 5's 0.003 uW memory idle).
    EXPECT_NEAR(sram.averagePowerWatts(), 8 * 409e-12, 0.2e-9);
}

TEST_F(SramTest, GatedBanksApproachGatedFloor)
{
    for (unsigned bank = 0; bank < 8; ++bank)
        sram.gateBank(bank);
    // Restart accounting wouldn't matter much; just run long.
    advance(100.0);
    EXPECT_NEAR(sram.averagePowerWatts(), 8 * 342e-12, 0.1e-9);
}

TEST_F(SramTest, AccessEnergyMatchesActiveFigure)
{
    // One access per cycle for one second: the whole-array active power.
    const sim::Tick cycle = 10'000;
    for (unsigned i = 0; i < 100'000; ++i) {
        simulation.runUntil(static_cast<sim::Tick>(i) * cycle);
        sram.read(static_cast<std::uint16_t>(i % 2048));
    }
    simulation.runUntil(100'000ULL * cycle);
    EXPECT_NEAR(sram.averagePowerWatts(), 2.07e-6, 0.05e-6);
}

TEST(SramPrecharge, IntelligentSchemeCutsActivePower)
{
    SramPowerModel power;
    double base = power.effectiveBankActiveWatts(false);
    double smart = power.effectiveBankActiveWatts(true);
    EXPECT_NEAR(smart / base, 0.65, 1e-9);

    // Dynamic: same access stream, ~33 % lower average power.
    auto run = [](bool intelligent) {
        sim::Simulation simulation;
        Sram::Config cfg;
        cfg.intelligentPrecharge = intelligent;
        Sram sram(simulation, "sram", cfg);
        for (unsigned i = 0; i < 10'000; ++i) {
            simulation.runUntil(static_cast<sim::Tick>(i) * 10'000);
            sram.read(static_cast<std::uint16_t>(i % 2048));
        }
        simulation.runUntil(10'000ULL * 10'000);
        return sram.averagePowerWatts();
    };
    double measured_saving = 1.0 - run(true) / run(false);
    EXPECT_GT(measured_saving, 0.25);
    EXPECT_LT(measured_saving, 0.40);
}

TEST(SramPowerModel, ArrayFiguresMatchPaper)
{
    SramPowerModel power;
    EXPECT_NEAR(power.arrayWatts(8, 1, 0), 2.07e-6, 0.01e-6);
    EXPECT_NEAR(power.arrayWatts(8, 0, 0), 3.27e-9, 0.1e-9);
    EXPECT_NEAR(power.arrayWatts(8, 0, 8), 8 * 342e-12, 1e-12);
    // The >98 % cell-array gating claim.
    EXPECT_GT(1.0 - power.cellArrayGatedWatts / power.cellArrayIdleWatts,
              0.98);
}

TEST(SramConfig, RejectsBadGeometry)
{
    sim::Simulation simulation;
    Sram::Config cfg;
    cfg.sizeBytes = 1000; // not a multiple of 256
    EXPECT_THROW(Sram(simulation, "bad", cfg), sim::FatalError);
}

class SramBankParam : public ::testing::TestWithParam<unsigned>
{};

TEST_P(SramBankParam, EachBankGatesIndependently)
{
    sim::Simulation simulation;
    Sram sram(simulation, "sram", Sram::Config{});
    unsigned bank = GetParam();
    std::uint16_t addr = static_cast<std::uint16_t>(bank * 256 + 17);
    std::uint16_t other =
        static_cast<std::uint16_t>(((bank + 1) % 8) * 256 + 17);

    sram.write(addr, 0x77);
    sram.write(other, 0x66);
    sram.gateBank(bank);
    EXPECT_EQ(sram.read(addr), 0xFF);
    EXPECT_EQ(sram.read(other), 0x66); // neighbours unaffected
}

INSTANTIATE_TEST_SUITE_P(AllBanks, SramBankParam,
                         ::testing::Range(0u, 8u));
