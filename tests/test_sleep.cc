/**
 * @file
 * Sleep-subsystem tests: the per-node sleep policies (src/sleep), the
 * beacon-enabled duty-cycled 802.15.4 MAC, and their scenario surface.
 *
 *  - [sleep]/[mac] parsing: file:line diagnostics, canonical round-trip,
 *    dotted-key overrides, cross-key validation
 *  - lowering conventions: sink/coordinator exemption, per-node override
 *  - the mid-flight rule extended to sleep: a receiver that enters deep
 *    sleep while a frame is on the air misses it like a dead node, on
 *    both Channel and SpatialMedium; light sleep keeps the radio in RX
 *  - beacon MAC: coordinator beacons on the BI grid, device sync and
 *    inter-superframe sleep, the unsynced-device fallback that keeps
 *    multi-hop relays flowing beyond coordinator range
 *  - deep sleep: sub-duty energy profile, DeepSleepTimer reset reason
 *  - the K = 1/2/4 byte-identical stats oracle on a beacon-enabled
 *    duty-cycled grid
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/network.hh"
#include "core/sensor_node.hh"
#include "mcu/reset_reason.hh"
#include "net/channel.hh"
#include "net/frame.hh"
#include "scenario/lower.hh"
#include "scenario/scenario.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"
#include "sleep/controller.hh"

using namespace ulp;
namespace map = ulp::core::map;
using scenario::Placement;
using scenario::RadioModel;
using scenario::Scenario;

namespace {

/** Parse @p text expecting a diagnostic that contains @p where. */
void
expectParseError(const std::string &text, const std::string &where)
{
    try {
        scenario::parseScenario(text, "bad.ini");
        FAIL() << "expected a parse error mentioning '" << where << "'";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(where), std::string::npos)
            << "diagnostic was: " << e.what();
    }
}

/** An N-node line with 40 m pitch: node i only hears i-1 and i+1. */
Scenario
chainScenario(unsigned count)
{
    Scenario sc;
    sc.name = "chain";
    sc.seconds = 2.0;
    sc.seed = 7;
    sc.nodes.count = count;
    sc.nodes.app = "app3";
    sc.nodes.period = 2000;
    sc.nodes.placement = Placement::Explicit;
    sc.radio.model = RadioModel::Spatial;
    sc.radio.spatial.pathLossExponent = 2.8;
    sc.radio.spatial.sensitivityDbm = -90.0;
    sc.routes.sink = 0;
    for (unsigned i = 0; i < count; ++i) {
        sc.overrides[i].x = 40.0 * i;
        sc.overrides[i].y = 0.0;
    }
    return sc;
}

/** A 16-node beacon-enabled duty-cycled grid routing to a corner sink. */
Scenario
beaconGridScenario(unsigned threads, double seconds)
{
    Scenario sc;
    sc.name = "beacon-grid";
    sc.seconds = seconds;
    sc.seed = 42;
    sc.threads = threads;
    sc.nodes.count = 16;
    sc.nodes.app = "app3";
    sc.nodes.period = 2000;
    sc.nodes.placement = Placement::Grid;
    sc.nodes.spacing = 40.0;
    sc.radio.model = RadioModel::Spatial;
    sc.radio.spatial.pathLossExponent = 2.8;
    sc.radio.spatial.sensitivityDbm = -90.0;
    sc.routes.sink = 0;
    sc.mac.emplace();
    sc.mac->mode = ulp::sleep::MacMode::Beacon;
    sc.mac->beaconOrder = 4;
    sc.mac->sfOrder = 2;
    sc.mac->guard = 128;
    sc.mac->driftPpm = 40.0;
    return sc;
}

/** Run a lowered scenario under a SleepController; return merged stats. */
core::Network::Counters
runWithSleep(const Scenario &sc, std::string *stats = nullptr)
{
    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    ulp::sleep::SleepController sleepCtl(network);
    network.runForSeconds(low.seconds);
    if (stats) {
        std::ostringstream os;
        network.dumpStats(os);
        *stats = os.str();
    }
    return network.counters();
}

} // namespace

// --------------------------------------------------------------------------
// [sleep] / [mac] parsing and validation
// --------------------------------------------------------------------------

TEST(SleepScenario, DiagnosticsCarryFileAndLine)
{
    expectParseError("[sleep]\npolicy = nap\n", "bad.ini:2");
    expectParseError("[sleep]\npolicy = nap\n",
                     "'policy' must be none, light or deep");
    expectParseError("[mac]\nmode = aloha\n", "bad.ini:2");
    expectParseError("[mac]\nmode = aloha\n", "'mode' must be csma or beacon");
}

TEST(SleepScenario, UnknownKeysRejected)
{
    expectParseError("[sleep]\nnaptime = 5\n",
                     "unknown key 'naptime' in [sleep]");
    expectParseError("[mac]\nsuperframe = 3\n",
                     "unknown key 'superframe' in [mac]");
}

TEST(SleepScenario, RangeChecks)
{
    expectParseError("[sleep]\nperiod = 0\n", "'period' must be positive");
    expectParseError("[sleep]\non = -1\n", "'on' must be positive");
    expectParseError("[mac]\nbeacon-order = 15\n", "beacon-order");
    expectParseError("[mac]\ndrift-ppm = -3\n",
                     "'drift-ppm' must be non-negative");
    expectParseError("[node 0]\nsleep-period = 0\n",
                     "'sleep-period' must be positive");
    expectParseError("[node 0]\nsleep-on = 0\n", "'sleep-on' must be positive");
}

TEST(SleepScenario, CrossKeyValidation)
{
    // The on-window must fit strictly inside the period — also when the
    // two halves come from different places (override + default).
    expectParseError("[sleep]\npolicy = light\nperiod = 1\non = 1\n",
                     "shorter than the period");
    expectParseError("[sleep]\npolicy = deep\nperiod = 0.5\n"
                     "[node 0]\nsleep-on = 0.6\n",
                     "shorter than the period");

    // Beacon mode needs a coordinator (explicit or the routes sink)...
    expectParseError("[mac]\nmode = beacon\n", "needs a coordinator");
    // ...in range...
    expectParseError("[nodes]\ncount = 2\n[mac]\nmode = beacon\n"
                     "coordinator = 5\n",
                     "coordinator is out of range");
    // ...and a CAP no longer than the beacon interval.
    expectParseError("[mac]\nmode = beacon\ncoordinator = 0\n"
                     "beacon-order = 2\nsf-order = 3\n",
                     "must not exceed beacon-order");
}

TEST(SleepScenario, RoundTripIsCanonical)
{
    Scenario sc = chainScenario(3);
    sc.mac.emplace();
    sc.mac->mode = ulp::sleep::MacMode::Beacon;
    sc.mac->beaconOrder = 5;
    sc.mac->sfOrder = 2;
    sc.mac->guard = 64;
    sc.mac->driftPpm = 40.0;
    sc.mac->coordinator = 0;
    sc.sleep.emplace();
    sc.sleep->policy = ulp::sleep::Policy::Light;
    sc.sleep->period = 0.5;
    sc.sleep->on = 0.05;
    sc.overrides[1].sleepPolicy = ulp::sleep::Policy::Deep;
    sc.overrides[1].sleepPeriod = 2.0;
    sc.overrides[1].sleepOn = 0.25;

    const std::string printed = scenario::printScenario(sc);
    Scenario reparsed = scenario::parseScenario(printed, "roundtrip.ini");
    EXPECT_EQ(reparsed, sc);
    EXPECT_EQ(scenario::printScenario(reparsed), printed);
}

TEST(SleepScenario, DottedKeyOverrides)
{
    Scenario sc = chainScenario(3);
    scenario::applyScenarioKey(sc, "sleep.policy", "deep", "axis");
    scenario::applyScenarioKey(sc, "sleep.period", "10", "axis");
    scenario::applyScenarioKey(sc, "sleep.on", "0.2", "axis");
    scenario::applyScenarioKey(sc, "mac.mode", "beacon", "axis");
    scenario::applyScenarioKey(sc, "mac.beacon-order", "7", "axis");
    scenario::applyScenarioKey(sc, "node.2.sleep-policy", "light", "axis");
    ASSERT_TRUE(sc.sleep.has_value());
    EXPECT_EQ(sc.sleep->policy, ulp::sleep::Policy::Deep);
    EXPECT_DOUBLE_EQ(sc.sleep->period, 10.0);
    EXPECT_DOUBLE_EQ(sc.sleep->on, 0.2);
    ASSERT_TRUE(sc.mac.has_value());
    EXPECT_EQ(sc.mac->mode, ulp::sleep::MacMode::Beacon);
    EXPECT_EQ(sc.mac->beaconOrder, 7u);
    EXPECT_EQ(sc.overrides[2].sleepPolicy, ulp::sleep::Policy::Light);
    scenario::validateScenario(sc, "axis");
}

TEST(SleepScenario, LoweringExemptsSinkAndCoordinator)
{
    Scenario sc = chainScenario(3);
    sc.sleep.emplace();
    sc.sleep->policy = ulp::sleep::Policy::Light;
    sc.mac.emplace();
    sc.mac->mode = ulp::sleep::MacMode::Beacon;

    scenario::Lowered low = scenario::lower(sc);
    EXPECT_EQ(low.spec.mac.mode, ulp::sleep::MacMode::Beacon);
    // The coordinator defaults to the routes sink and never sleeps...
    EXPECT_TRUE(low.spec.nodes[0].macCoordinator);
    EXPECT_EQ(low.spec.nodes[0].sleep.policy, ulp::sleep::Policy::None);
    // ...while every other node inherits the [sleep] default.
    EXPECT_EQ(low.spec.nodes[1].sleep.policy, ulp::sleep::Policy::Light);
    EXPECT_EQ(low.spec.nodes[2].sleep.policy, ulp::sleep::Policy::Light);

    // An explicit override opts the sink back in.
    sc.overrides[0].sleepPolicy = ulp::sleep::Policy::Light;
    scenario::Lowered low2 = scenario::lower(sc);
    EXPECT_EQ(low2.spec.nodes[0].sleep.policy, ulp::sleep::Policy::Light);
}

// --------------------------------------------------------------------------
// The mid-flight rule under sleep transitions (Channel + SpatialMedium)
// --------------------------------------------------------------------------

namespace {

/** Two nodes on a broadcast channel; node 0 transmits one frame by hand. */
struct MidflightChannelTest : ::testing::Test
{
    sim::Simulation simulation;
    net::Channel channel{simulation, "channel",
                         net::Channel::defaultBitRate, 42};
    std::unique_ptr<core::SensorNode> sender;
    std::unique_ptr<core::SensorNode> receiver;
    std::vector<std::uint8_t> wire;

    void
    SetUp() override
    {
        core::NodeConfig cfg;
        cfg.address = 1;
        cfg.sensorSignal = [](sim::Tick) { return 0; };
        sender = std::make_unique<core::SensorNode>(simulation, "sender",
                                                    cfg, &channel);
        cfg.address = 2;
        receiver = std::make_unique<core::SensorNode>(simulation, "receiver",
                                                      cfg, &channel);
        receiver->dataBus().write(map::radioBase + map::radioCtrl,
                                  core::RadioDevice::cmdRxOn);

        net::Frame frame;
        frame.seq = 9;
        frame.src = 1;
        frame.dest = 2;
        frame.payload = {0x55};
        wire = frame.serialize();
        for (std::size_t i = 0; i < wire.size(); ++i) {
            sender->dataBus().write(
                static_cast<map::Addr>(map::radioBase + map::radioTxFifo + i),
                wire[i]);
        }
        sender->dataBus().write(map::radioBase + map::radioTxLen,
                                static_cast<std::uint8_t>(wire.size()));
        sender->dataBus().write(map::radioBase + map::radioCtrl,
                                core::RadioDevice::cmdTx);
    }

    /** Advance to the middle of the frame's airtime. */
    void
    advanceToMidair()
    {
        const double air = static_cast<double>(wire.size()) * 8.0 /
                           net::Channel::defaultBitRate;
        simulation.runForSeconds(air / 2.0);
        ASSERT_TRUE(channel.busy()) << "frame should still be on the air";
    }
};

} // namespace

TEST_F(MidflightChannelTest, DeepSleepEntryDropsMidflightFrame)
{
    advanceToMidair();
    receiver->deepSleepEnter();
    simulation.runForSeconds(0.05);
    // The medium owns the in-flight state: the frame completed, but the
    // receiver left the medium mid-flight and never heard it — exactly
    // the dead-node rule.
    EXPECT_EQ(channel.framesDelivered(), 0u);
    EXPECT_EQ(receiver->radio().framesReceived(), 0u);
    EXPECT_FALSE(receiver->radio().attachedToMedium());
}

TEST_F(MidflightChannelTest, AwakeReceiverHearsTheSameFrame)
{
    advanceToMidair();
    simulation.runForSeconds(0.05);
    EXPECT_EQ(channel.framesDelivered(), 1u);
    EXPECT_EQ(receiver->radio().framesReceived(), 1u);
}

TEST_F(MidflightChannelTest, LightSleepKeepsRadioInRx)
{
    advanceToMidair();
    receiver->lightSleepEnter();
    simulation.runForSeconds(0.05);
    // Light sleep is retention sleep: the radio stays attached and in RX,
    // so the mid-flight frame is delivered normally.
    EXPECT_EQ(channel.framesDelivered(), 1u);
    EXPECT_EQ(receiver->radio().framesReceived(), 1u);
    EXPECT_TRUE(receiver->inLightSleep());
}

namespace {

/** Two positioned nodes on a SpatialMedium-backed network; node 0
 *  transmits one frame by hand (the apps never sample in-window). */
scenario::NetworkSpec
spatialPairSpec()
{
    net::SpatialConfig radio;
    radio.pathLossExponent = 2.8;
    radio.sensitivityDbm = -90.0;

    scenario::NetworkSpec spec;
    spec.withThreads(1).withSpatial(radio);
    spec.channelSeed = 42;
    for (unsigned i = 0; i < 2; ++i) {
        core::NodeConfig nc;
        nc.address = static_cast<std::uint16_t>(1 + i);
        nc.seed = 1000 + i;
        nc.sensorSignal = [](sim::Tick) { return 0; };
        core::apps::AppParams params;
        params.samplePeriodCycles = 1'000'000'000; // never samples in-test
        spec.addNode()
            .withConfig(nc)
            .withApp("app1")
            .withParams(params)
            .at(10.0 * i, 0.0);
    }
    return spec;
}

/** Drive one frame from node 0 and optionally deep-sleep node 1 at the
 *  middle of its airtime; returns frames delivered by the medium. */
std::uint64_t
spatialMidflightDeliveries(bool sleep_midflight)
{
    core::Network network(spatialPairSpec());
    network.runUntilTick(sim::secondsToTicks(0.001));

    net::Frame frame;
    frame.seq = 9;
    frame.src = 1;
    frame.dest = 2;
    frame.payload = {0x55};
    const std::vector<std::uint8_t> wire = frame.serialize();
    core::SensorNode &sender = network.node(0);
    network.node(1).dataBus().write(map::radioBase + map::radioCtrl,
                                    core::RadioDevice::cmdRxOn);
    for (std::size_t i = 0; i < wire.size(); ++i) {
        sender.dataBus().write(
            static_cast<map::Addr>(map::radioBase + map::radioTxFifo + i),
            wire[i]);
    }
    sender.dataBus().write(map::radioBase + map::radioTxLen,
                           static_cast<std::uint8_t>(wire.size()));
    const sim::Tick txStart = sim::secondsToTicks(0.001);
    sender.dataBus().write(map::radioBase + map::radioCtrl,
                           core::RadioDevice::cmdTx);

    const sim::Tick airTicks = sim::secondsToTicks(
        static_cast<double>(wire.size()) * 8.0 /
        net::Channel::defaultBitRate);
    network.runUntilTick(txStart + airTicks / 2);
    if (sleep_midflight)
        network.node(1).deepSleepEnter();
    network.runUntilTick(txStart + sim::secondsToTicks(0.05));
    return network.counters().framesDelivered;
}

} // namespace

TEST(MidflightSpatial, DeepSleepEntryDropsMidflightFrame)
{
    EXPECT_EQ(spatialMidflightDeliveries(/*sleep_midflight=*/true), 0u);
}

TEST(MidflightSpatial, AwakeReceiverHearsTheSameFrame)
{
    EXPECT_EQ(spatialMidflightDeliveries(/*sleep_midflight=*/false), 1u);
}

// --------------------------------------------------------------------------
// Beacon-enabled duty-cycled MAC
// --------------------------------------------------------------------------

TEST(BeaconMac, CoordinatorBeaconsOnTheSuperframeGrid)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel",
                         net::Channel::defaultBitRate, 42);
    core::NodeConfig cfg;
    cfg.address = 1;
    cfg.sensorSignal = [](sim::Tick) { return 0; };
    core::SensorNode node(simulation, "coord", cfg, &channel);

    node.dataBus().write(map::radioBase + map::radioBeaconOrder, 3);
    node.dataBus().write(map::radioBase + map::radioSfOrder, 1);
    node.dataBus().write(map::radioBase + map::radioMacMode,
                         core::RadioDevice::macModeBeaconCoord);

    // BI(BO=3) = 960 * 2^3 symbols = 122.88 ms.
    const sim::Tick bi = core::RadioDevice::baseSuperframeTicks << 3;
    EXPECT_EQ(node.radio().beaconIntervalTicks(), bi);

    simulation.runForSeconds(1.0);
    const std::uint64_t sent = node.radio().beaconsSent();
    // One beacon per interval across the 1 s run (8.14 intervals).
    EXPECT_GE(sent, 7u);
    EXPECT_LE(sent, 10u);
    EXPECT_EQ(node.probes().count(core::Probe::BeaconTx), sent);
    // Between superframes the coordinator MAC sleeps (SO < BO).
    EXPECT_GT(node.radio().macSleeps(), 0u);
}

TEST(BeaconMac, DeviceSyncsAndSleepsBetweenSuperframes)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel",
                         net::Channel::defaultBitRate, 42);
    core::NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 0; };

    cfg.address = 1;
    core::SensorNode coord(simulation, "coord", cfg, &channel);
    coord.dataBus().write(map::radioBase + map::radioBeaconOrder, 3);
    coord.dataBus().write(map::radioBase + map::radioSfOrder, 1);
    coord.dataBus().write(map::radioBase + map::radioMacMode,
                          core::RadioDevice::macModeBeaconCoord);

    cfg.address = 2;
    core::SensorNode device(simulation, "device", cfg, &channel);
    device.dataBus().write(map::radioBase + map::radioCtrl,
                           core::RadioDevice::cmdRxOn);
    device.dataBus().write(map::radioBase + map::radioMacMode,
                           core::RadioDevice::macModeBeaconDevice);

    simulation.runForSeconds(1.0);
    EXPECT_TRUE(device.radio().beaconSynced());
    EXPECT_GE(device.radio().beaconsReceived(), 4u);
    EXPECT_GT(device.radio().macSleeps(), 0u);
    EXPECT_EQ(device.probes().count(core::Probe::BeaconRx),
              device.radio().beaconsReceived());
    EXPECT_GT(device.probes().count(core::Probe::MacSleep), 0u);
    // The device adopted the coordinator's superframe structure.
    EXPECT_EQ(device.radio().beaconIntervalTicks(),
              coord.radio().beaconIntervalTicks());
}

TEST(BeaconMac, UnsyncedRelayBeyondCoordinatorRangeStillDelivers)
{
    // A 3-node chain: node 2 can never hear coordinator 0's beacons, so
    // it must fall back to unsynchronized transmission or the multi-hop
    // path would starve waiting for a CAP that never comes.
    Scenario sc = chainScenario(3);
    sc.mac.emplace();
    sc.mac->mode = ulp::sleep::MacMode::Beacon;
    sc.mac->beaconOrder = 4;
    sc.mac->sfOrder = 2;

    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    network.runForSeconds(low.seconds);

    core::SensorNode &relay = network.node(1);
    core::SensorNode &leaf = network.node(2);
    EXPECT_TRUE(relay.radio().beaconSynced());
    EXPECT_FALSE(leaf.radio().beaconSynced());
    EXPECT_EQ(leaf.radio().beaconsReceived(), 0u);
    EXPECT_GT(leaf.radio().framesSent(), 0u);

    // The leaf's samples crossed both hops: the sink locally delivered
    // frames whose origin is the leaf's address (1 + index = 3).
    const auto &bySource = network.node(0).msgProc().localDeliveriesBySource();
    auto it = bySource.find(3);
    ASSERT_NE(it, bySource.end());
    EXPECT_GT(it->second, 0u);
}

// --------------------------------------------------------------------------
// Deep sleep: energy profile and reset reason
// --------------------------------------------------------------------------

namespace {

/** Two broadcast nodes sampling continuously; node 1's policy varies. */
Scenario
dutyScenario(ulp::sleep::Policy policy, double period, double on,
             double seconds)
{
    Scenario sc;
    sc.name = "duty";
    sc.seconds = seconds;
    sc.seed = 5;
    sc.nodes.count = 2;
    sc.nodes.app = "app1";
    sc.nodes.period = 1000;
    sc.sleep.emplace();
    sc.sleep->policy = policy;
    sc.sleep->period = period;
    sc.sleep->on = on;
    // Node 0 is the always-awake reference (no sink here to exempt it).
    sc.overrides[0].sleepPolicy = ulp::sleep::Policy::None;
    return sc;
}

} // namespace

TEST(DeepSleep, DutyCycledNodeDrawsAFractionOfAwakePower)
{
    sim::setQuiet(true);
    // 1% duty: awake 10 ms of every second.
    Scenario sleepy = dutyScenario(ulp::sleep::Policy::Deep, 1.0, 0.01, 3.0);
    scenario::Lowered low = scenario::lower(sleepy);
    core::Network network(low.spec);
    ulp::sleep::SleepController sleepCtl(network);
    network.runForSeconds(low.seconds);

    EXPECT_GE(sleepCtl.deepSleeps(), 2u);
    EXPECT_GE(network.node(1).probes().count(core::Probe::DeepSleepEnter),
              2u);
    const double awakeWatts = network.node(0).totalAverageWatts();
    const double sleepyWatts = network.node(1).totalAverageWatts();
    ASSERT_GT(awakeWatts, 0.0);
    EXPECT_GT(sleepyWatts, 0.0);
    // The ledger must show the duty cycle: a node gated 99% of the time
    // cannot average anywhere near the always-awake draw.
    EXPECT_LT(sleepyWatts, 0.25 * awakeWatts);
    sim::setQuiet(false);
}

TEST(DeepSleep, TimerWakeLatchesDeepSleepResetReason)
{
    sim::setQuiet(true);
    Scenario sc = dutyScenario(ulp::sleep::Policy::Deep, 1.0, 0.2, 2.1);
    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    ulp::sleep::SleepController sleepCtl(network);
    network.runForSeconds(low.seconds);

    // t = 2.1 s sits inside on-window k=2: the node is awake, and the
    // last boot was a scheduled deep-sleep wake, not a cold power-on.
    core::SensorNode &node = network.node(1);
    EXPECT_FALSE(node.inDeepSleep());
    EXPECT_TRUE(node.alive());
    EXPECT_EQ(node.micro().resetReason(), mcu::ResetReason::DeepSleepTimer);
    EXPECT_GE(node.probes().count(core::Probe::DeepSleepExit), 2u);
    EXPECT_EQ(sleepCtl.deepSleeps(),
              node.probes().count(core::Probe::DeepSleepEnter));
    sim::setQuiet(false);
}

TEST(LightSleep, IncomingFrameWakesTheSink)
{
    sim::setQuiet(true);
    // Node 0 originates toward sink 1; the sink opts back into light
    // sleep (overriding the sink exemption), so delivery rides the
    // wake-on-frame path.
    Scenario sc = chainScenario(2);
    sc.routes.sink = 1;
    sc.sleep.emplace();
    sc.sleep->policy = ulp::sleep::Policy::Light;
    sc.sleep->period = 0.5;
    sc.sleep->on = 0.05;
    // The sender must stay awake: with both nodes on the same (phase-
    // aligned) schedule, its frozen sample timer would only ever fire
    // inside shared on-windows and no frame would find the sink asleep.
    sc.overrides[0].sleepPolicy = ulp::sleep::Policy::None;
    sc.overrides[1].sleepPolicy = ulp::sleep::Policy::Light;

    scenario::Lowered low = scenario::lower(sc);
    core::Network network(low.spec);
    ulp::sleep::SleepController sleepCtl(network);
    network.runForSeconds(low.seconds);

    EXPECT_GT(sleepCtl.lightSleeps(), 0u);
    EXPECT_GT(sleepCtl.frameWakes(), 0u);
    core::SensorNode &sink = network.node(1);
    EXPECT_GT(sink.probes().count(core::Probe::LightSleepEnter), 0u);
    EXPECT_FALSE(sink.msgProc().localDeliveriesBySource().empty());
    sim::setQuiet(false);
}

// --------------------------------------------------------------------------
// The K = 1/2/4 oracle on a beacon-enabled duty-cycled grid
// --------------------------------------------------------------------------

TEST(BeaconOracle, StatsAreByteIdenticalAcrossThreadCounts)
{
    sim::setQuiet(true);
    std::string stats1, stats2, stats4;
    core::Network::Counters c1 =
        runWithSleep(beaconGridScenario(1, 1.0), &stats1);
    core::Network::Counters c2 =
        runWithSleep(beaconGridScenario(2, 1.0), &stats2);
    core::Network::Counters c4 =
        runWithSleep(beaconGridScenario(4, 1.0), &stats4);
    sim::setQuiet(false);

    EXPECT_GT(c1.framesDelivered, 0u);
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(c1, c4);
    EXPECT_EQ(stats1, stats2);
    EXPECT_EQ(stats1, stats4);
}

TEST(BeaconOracle, LightSleepScheduleIsThreadCountInvariant)
{
    sim::setQuiet(true);
    Scenario base = beaconGridScenario(1, 1.0);
    base.sleep.emplace();
    base.sleep->policy = ulp::sleep::Policy::Light;
    base.sleep->period = 0.4;
    base.sleep->on = 0.1;
    Scenario sharded = base;
    sharded.threads = 2;

    std::string stats1, stats2;
    core::Network::Counters c1 = runWithSleep(base, &stats1);
    core::Network::Counters c2 = runWithSleep(sharded, &stats2);
    sim::setQuiet(false);

    EXPECT_EQ(c1, c2);
    EXPECT_EQ(stats1, stats2);
}
