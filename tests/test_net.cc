/**
 * @file
 * Tests of the 802.15.4 substrate: CRC-16 correctness, frame codec
 * round-trips (property-swept over payload sizes), corruption detection
 * (any flipped byte must fail the FCS), and the broadcast channel's
 * delivery, loss, and collision models.
 */

#include <gtest/gtest.h>

#include "net/channel.hh"
#include "sim/logging.hh"
#include "net/frame.hh"
#include "net/packet_sink.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::net;

TEST(Crc16, KnownVectors)
{
    // CRC-16/CCITT (XModem variant: poly 0x1021, init 0): "123456789"
    // yields 0x31C3.
    const std::uint8_t digits[] = {'1', '2', '3', '4', '5',
                                   '6', '7', '8', '9'};
    EXPECT_EQ(crc16(digits), 0x31C3);

    EXPECT_EQ(crc16(std::span<const std::uint8_t>{}), 0x0000);
    const std::uint8_t zero[] = {0x00};
    EXPECT_EQ(crc16(zero), 0x0000);
    const std::uint8_t ff[] = {0xFF};
    // One 0xFF byte through the bitwise definition.
    EXPECT_EQ(crc16(ff), 0x1EF0);
}

TEST(Frame, SerializeLayout)
{
    Frame frame;
    frame.type = Frame::Type::Data;
    frame.seq = 0x42;
    frame.destPan = 0x2211;
    frame.dest = 0x4433;
    frame.src = 0x6655;
    frame.payload = {0xAA};

    std::vector<std::uint8_t> wire = frame.serialize();
    ASSERT_EQ(wire.size(), 12u);
    EXPECT_EQ(wire[0], 0x01); // FCF lo: data frame
    EXPECT_EQ(wire[1], 0x88); // FCF hi: 16-bit addressing both ways
    EXPECT_EQ(wire[2], 0x42);
    EXPECT_EQ(wire[3], 0x11); // PAN little-endian
    EXPECT_EQ(wire[4], 0x22);
    EXPECT_EQ(wire[5], 0x33); // dest little-endian
    EXPECT_EQ(wire[6], 0x44);
    EXPECT_EQ(wire[7], 0x55); // src little-endian
    EXPECT_EQ(wire[8], 0x66);
    EXPECT_EQ(wire[9], 0xAA);

    std::uint16_t fcs = crc16(std::span(wire.data(), 10));
    EXPECT_EQ(wire[10], fcs & 0xFF);
    EXPECT_EQ(wire[11], fcs >> 8);
}

TEST(Frame, OversizedPayloadIsFatal)
{
    Frame frame;
    frame.payload.assign(Frame::maxPayloadBytes + 1, 0);
    EXPECT_THROW(frame.serialize(), sim::FatalError);
}

TEST(Frame, DeserializeRejectsRunts)
{
    std::vector<std::uint8_t> tiny(Frame::overheadBytes - 1, 0);
    EXPECT_FALSE(Frame::deserialize(tiny).has_value());
    std::vector<std::uint8_t> huge(Frame::maxFrameBytes + 1, 0);
    EXPECT_FALSE(Frame::deserialize(huge).has_value());
}

class FrameRoundTrip : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(FrameRoundTrip, SerializeDeserializeIdentity)
{
    sim::Random rng(GetParam() * 1234 + 5);
    for (int iteration = 0; iteration < 20; ++iteration) {
        Frame frame;
        frame.type = static_cast<Frame::Type>(rng.uniformInt(0, 3));
        frame.seq = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
        frame.destPan = static_cast<std::uint16_t>(rng.uniformInt(0, 0xFFFF));
        frame.dest = static_cast<std::uint16_t>(rng.uniformInt(0, 0xFFFF));
        frame.src = static_cast<std::uint16_t>(rng.uniformInt(0, 0xFFFF));
        frame.payload.resize(GetParam());
        for (auto &b : frame.payload)
            b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));

        auto wire = frame.serialize();
        auto parsed = Frame::deserialize(wire);
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(*parsed, frame);
    }
}

TEST_P(FrameRoundTrip, AnySingleCorruptionFailsFcs)
{
    Frame frame;
    frame.seq = 9;
    frame.dest = 0x1234;
    frame.src = 0x5678;
    frame.payload.assign(GetParam(), 0x3C);
    auto wire = frame.serialize();

    for (std::size_t i = 0; i < wire.size(); ++i) {
        for (std::uint8_t bit : {0x01, 0x80}) {
            auto corrupted = wire;
            corrupted[i] ^= bit;
            auto parsed = Frame::deserialize(corrupted);
            // A flip may survive only by decoding to a *different* frame
            // with a matching FCS — impossible for single-bit errors
            // under CRC-16.
            EXPECT_FALSE(parsed.has_value())
                << "byte " << i << " bit " << int(bit);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(PayloadSizes, FrameRoundTrip,
                         ::testing::Values(0u, 1u, 5u, 21u, 64u,
                                           Frame::maxPayloadBytes));

// --------------------------------------------------------------------------
// Channel
// --------------------------------------------------------------------------

namespace {

struct Listener : Transceiver
{
    std::vector<Frame> got;
    int corrupted = 0;
    int starts = 0;

    void
    frameArrived(const Frame &frame, bool bad) override
    {
        if (bad)
            ++corrupted;
        else
            got.push_back(frame);
    }

    void frameStarted(sim::Tick) override { ++starts; }
};

Frame
makeFrame(std::uint8_t seq)
{
    Frame frame;
    frame.seq = seq;
    frame.src = 1;
    frame.dest = 2;
    frame.payload = {seq};
    return frame;
}

} // namespace

TEST(Channel, DeliversToAllButSender)
{
    sim::Simulation simulation;
    Channel channel(simulation, "ch");
    Listener tx, rx1, rx2;
    channel.attach(&tx);
    channel.attach(&rx1);
    channel.attach(&rx2);

    sim::Tick end = channel.transmit(&tx, makeFrame(1));
    // 12 bytes at 250 kbit/s = 384 us.
    EXPECT_EQ(end, sim::secondsToTicks(12 * 8 / 250e3));
    EXPECT_EQ(rx1.starts, 1);
    EXPECT_TRUE(rx1.got.empty()); // not yet delivered

    simulation.runUntil(end);
    ASSERT_EQ(rx1.got.size(), 1u);
    ASSERT_EQ(rx2.got.size(), 1u);
    EXPECT_TRUE(tx.got.empty());
    EXPECT_EQ(channel.framesDelivered(), 2u);
}

TEST(Channel, OverlappingTransmissionsCollide)
{
    sim::Simulation simulation;
    Channel channel(simulation, "ch");
    Listener a, b, rx;
    channel.attach(&a);
    channel.attach(&b);
    channel.attach(&rx);

    channel.transmit(&a, makeFrame(1));
    simulation.runFor(sim::secondsToTicks(100e-6)); // mid-flight
    channel.transmit(&b, makeFrame(2));
    simulation.runForSeconds(0.01);

    EXPECT_EQ(channel.collisions(), 1u);
    EXPECT_TRUE(rx.got.empty());
    EXPECT_EQ(rx.corrupted, 2); // both frames arrive corrupted
}

TEST(Channel, CollisionsCanBeDisabled)
{
    sim::Simulation simulation;
    Channel channel(simulation, "ch");
    channel.setCollisionsEnabled(false);
    Listener a, b, rx;
    channel.attach(&a);
    channel.attach(&b);
    channel.attach(&rx);

    channel.transmit(&a, makeFrame(1));
    channel.transmit(&b, makeFrame(2));
    simulation.runForSeconds(0.01);
    EXPECT_EQ(channel.collisions(), 0u);
    EXPECT_EQ(rx.got.size(), 2u);
}

TEST(Channel, LossProbabilityDropsFrames)
{
    sim::Simulation simulation;
    Channel channel(simulation, "ch", Channel::defaultBitRate, 99);
    channel.setLossProbability(0.5);
    Listener tx, rx;
    channel.attach(&tx);
    channel.attach(&rx);

    for (int i = 0; i < 400; ++i) {
        channel.transmit(&tx, makeFrame(static_cast<std::uint8_t>(i)));
        simulation.runFor(sim::secondsToTicks(1e-3));
    }
    EXPECT_NEAR(static_cast<double>(rx.got.size()), 200.0, 50.0);
    EXPECT_GT(rx.got.size(), 0u);
}

TEST(Channel, DetachStopsDelivery)
{
    sim::Simulation simulation;
    Channel channel(simulation, "ch");
    Listener tx, rx;
    channel.attach(&tx);
    channel.attach(&rx);
    channel.transmit(&tx, makeFrame(1));
    channel.detach(&rx);
    simulation.runForSeconds(0.01);
    EXPECT_TRUE(rx.got.empty());
}

TEST(Channel, DuplicateAttachPanics)
{
    sim::Simulation simulation;
    Channel channel(simulation, "ch");
    Listener rx;
    channel.attach(&rx);
    EXPECT_THROW(channel.attach(&rx), sim::PanicError);
}

TEST(Channel, DetachIsSwapRemoveAndIdempotent)
{
    sim::Simulation simulation;
    Channel channel(simulation, "ch");
    Listener tx, a, b, c;
    channel.attach(&tx);
    channel.attach(&a);
    channel.attach(&b);
    channel.attach(&c);

    // Remove from the middle (swap-remove moves `c` into `a`'s slot);
    // the remaining receivers must still all hear the frame, and a
    // second detach of the same transceiver must be a no-op.
    channel.detach(&a);
    channel.detach(&a);

    channel.transmit(&tx, makeFrame(3));
    simulation.runForSeconds(0.01);
    EXPECT_TRUE(a.got.empty());
    EXPECT_EQ(b.got.size(), 1u);
    EXPECT_EQ(c.got.size(), 1u);

    // And `a` can come back after detaching (not "attached twice").
    channel.attach(&a);
    channel.transmit(&tx, makeFrame(4));
    simulation.runForSeconds(0.01);
    EXPECT_EQ(a.got.size(), 1u);
}

TEST(PacketSink, DeduplicatesAndCounts)
{
    sim::Simulation simulation;
    Channel channel(simulation, "ch");
    PacketSink sink(channel);
    Listener tx;
    channel.attach(&tx);

    channel.transmit(&tx, makeFrame(7));
    simulation.runForSeconds(0.01);
    channel.transmit(&tx, makeFrame(7)); // same (src, seq)
    simulation.runForSeconds(0.01);
    channel.transmit(&tx, makeFrame(8));
    simulation.runForSeconds(0.01);

    EXPECT_EQ(sink.uniqueDeliveries(), 2u);
    EXPECT_EQ(sink.duplicates(), 1u);
    EXPECT_EQ(sink.deliveriesFrom(1), 2u);
}
