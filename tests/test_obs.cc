/**
 * @file
 * Telemetry subsystem tests. The headline property is the determinism
 * oracle from the issue: for a fixed seed, the merged binary trace of a
 * 64-node network is byte-identical whether the simulation ran on 1, 2
 * or 4 shards. Also covers the exporters (validated with the in-tree
 * VCD parser and JSON checker), ring-overflow drop accounting, channel
 * list parsing, and the energy totals of sharded vs sequential runs.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "core/apps.hh"
#include "core/network.hh"
#include "core/probes.hh"
#include "core/sensor_node.hh"
#include "obs/event_log.hh"
#include "obs/exporters.hh"
#include "obs/trace_reader.hh"
#include "sim/telemetry.hh"

using namespace ulp;

namespace {

/** Same workload as test_parallel's oracle: app v1 near saturation. */
scenario::NetworkSpec
oracleSpec(unsigned nodes, unsigned threads)
{
    scenario::NetworkSpec spec;
    spec.threads = threads;
    spec.channelSeed = 42;
    for (unsigned i = 0; i < nodes; ++i) {
        core::NodeConfig nc;
        nc.address = static_cast<std::uint16_t>(1 + i);
        nc.seed = 1000 + i;
        nc.sensorSignal = [](sim::Tick) { return 200; };
        core::apps::AppParams params;
        params.samplePeriodCycles = 2500 + 37 * i;
        spec.addNode().withConfig(nc).withPrebuiltApp(
            core::apps::buildApp1(params));
    }
    return spec;
}

std::string
freshDir(const std::string &leaf)
{
    std::filesystem::path dir =
        std::filesystem::path(::testing::TempDir()) / leaf;
    std::filesystem::remove_all(dir);
    return dir.string();
}

/** Run the oracle network with tracing and return the trace directory. */
std::string
runTraced(unsigned nodes, unsigned threads, double seconds,
          const std::string &leaf,
          std::uint32_t mask = sim::allTelemetryChannels)
{
    obs::EventLogConfig ecfg;
    ecfg.dir = freshDir(leaf);
    ecfg.channelMask = mask;
    obs::EventLog log(ecfg, threads);

    scenario::NetworkSpec spec = oracleSpec(nodes, threads);
    spec.telemetrySink = [&log](unsigned s) { return &log.sink(s); };
    core::Network network(spec);
    for (unsigned s = 0; s < threads; ++s)
        log.attachSampler(s, network.shardSimulation(s));
    network.runForSeconds(seconds);
    log.finish();
    EXPECT_GT(log.totalRecorded(), 0u);
    EXPECT_EQ(log.totalDropped(), 0u);
    return ecfg.dir;
}

} // namespace

TEST(ObsDeterminism, MergedLogByteIdenticalAcrossThreadCounts)
{
    const unsigned nodes = 64;
    const double seconds = 0.05;

    std::string dir1 = runTraced(nodes, 1, seconds, "obs_k1");
    obs::MergedLog log1 = obs::readTraceDir(dir1);
    std::string bytes1 = obs::serializeMerged(log1);
    ASSERT_FALSE(log1.records.empty());
    // Every node contributes several instrumented components.
    EXPECT_GE(log1.components.size(), nodes);

    for (unsigned threads : {2u, 4u}) {
        std::string dir = runTraced(nodes, threads, seconds,
                                    "obs_k" + std::to_string(threads));
        obs::MergedLog log = obs::readTraceDir(dir);
        EXPECT_EQ(log.shards, threads);
        std::string bytes = obs::serializeMerged(log);
        EXPECT_EQ(bytes1.size(), bytes.size())
            << "threads=" << threads;
        EXPECT_TRUE(bytes1 == bytes)
            << "merged trace differs between threads=1 and threads="
            << threads;
    }
}

TEST(ObsExporters, VcdValidatesAndCoversAllHardwareChannels)
{
    std::string dir = runTraced(8, 2, 0.06, "obs_vcd");
    obs::MergedLog log = obs::readTraceDir(dir);
    std::string vcd = obs::exportVcd(log);

    std::string error;
    EXPECT_TRUE(obs::validateVcd(vcd, &error)) << error;

    // Power states, bus grants, EP FSM and IRQ traffic all present.
    EXPECT_NE(vcd.find("power_state"), std::string::npos);
    EXPECT_NE(vcd.find("mcu_holds_bus"), std::string::npos);
    EXPECT_NE(vcd.find("ep_state"), std::string::npos);
    EXPECT_NE(vcd.find("irq_code"), std::string::npos);
    EXPECT_NE(vcd.find("energy_j"), std::string::npos);
    EXPECT_NE(vcd.find("$timescale 1 ns"), std::string::npos);

    // The validator is not a rubber stamp.
    EXPECT_FALSE(obs::validateVcd("$enddefinitions $end\n#0\n", &error));
    std::string broken = vcd + "\n1NOPE\n";
    EXPECT_FALSE(obs::validateVcd(broken, &error));
}

TEST(ObsExporters, ChromeTraceIsValidJsonAndCoversAllHardwareChannels)
{
    std::string dir = runTraced(8, 2, 0.06, "obs_chrome");
    obs::MergedLog log = obs::readTraceDir(dir);

    obs::ExportNames names;
    names.irq = [](std::uint8_t c) { return "irq" + std::to_string(c); };
    names.probe = [](std::uint8_t p) {
        return "probe" + std::to_string(p);
    };
    std::string json = obs::exportChrome(log, names);

    std::string error;
    EXPECT_TRUE(obs::validateJson(json, &error)) << error;
    EXPECT_FALSE(obs::validateJson("{\"a\":1,}", &error));
    EXPECT_FALSE(obs::validateJson("{\"a\":1} extra", &error));

    EXPECT_NE(json.find("\"cat\":\"power\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"bus\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"ep\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"irq\""), std::string::npos);
    EXPECT_NE(json.find("\"cat\":\"energy\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("traceEvents"), std::string::npos);
}

TEST(ObsExporters, PowerCsvHasSamplesAndTotals)
{
    std::string dir = runTraced(4, 1, 0.02, "obs_power");
    obs::MergedLog log = obs::readTraceDir(dir);
    std::string csv = obs::exportPowerCsv(log);
    EXPECT_NE(csv.find("tick,seconds,component"), std::string::npos);
    EXPECT_NE(csv.find("TOTAL"), std::string::npos);
    EXPECT_NE(csv.find(".power"), std::string::npos);

    std::string summary = obs::summarize(log);
    EXPECT_NE(summary.find("records by channel"), std::string::npos);
    EXPECT_NE(summary.find("energy"), std::string::npos);
}

TEST(ObsEventLog, RingOverflowDropsAreCountedNotFatal)
{
    obs::EventLogConfig ecfg;
    ecfg.dir = freshDir("obs_overflow");
    ecfg.ringCapacity = 64;   // tiny: the oracle workload must overflow
    ecfg.streaming = false;   // nothing drains during the run
    obs::EventLog log(ecfg, 1);

    scenario::NetworkSpec spec = oracleSpec(4, 1);
    spec.telemetrySink = [&log](unsigned s) { return &log.sink(s); };
    core::Network network(spec);
    network.runForSeconds(0.05);
    log.finish();

    EXPECT_GT(log.totalDropped(), 0u);

    // The surviving prefix is still a readable, well-formed trace.
    obs::MergedLog merged = obs::readTraceDir(ecfg.dir);
    EXPECT_EQ(merged.records.size(), 64u);
    ASSERT_EQ(merged.droppedPerShard.size(), 1u);
    EXPECT_EQ(merged.droppedPerShard[0], log.totalDropped());
}

TEST(ObsEventLog, ChannelMaskFiltersRecords)
{
    std::uint32_t mask = 0;
    std::string error;
    ASSERT_TRUE(obs::parseChannelList("power,irq", &mask, &error));

    std::string dir = runTraced(4, 1, 0.02, "obs_masked", mask);
    obs::MergedLog log = obs::readTraceDir(dir);
    ASSERT_FALSE(log.records.empty());
    for (const obs::Record &r : log.records) {
        auto channel = static_cast<sim::TelemetryChannel>(r.channel);
        EXPECT_TRUE(channel == sim::TelemetryChannel::Power ||
                    channel == sim::TelemetryChannel::Irq)
            << "unexpected channel " << unsigned(r.channel);
    }
}

TEST(ObsEventLog, ParseChannelListRejectsUnknownNames)
{
    std::uint32_t mask = 0;
    std::string error;

    EXPECT_TRUE(obs::parseChannelList("all", &mask, &error));
    EXPECT_EQ(mask, sim::allTelemetryChannels);

    EXPECT_TRUE(obs::parseChannelList("power,bus,ep", &mask, &error));
    EXPECT_EQ(mask,
              (1u << unsigned(sim::TelemetryChannel::Power)) |
                  (1u << unsigned(sim::TelemetryChannel::Bus)) |
                  (1u << unsigned(sim::TelemetryChannel::EpFsm)));

    EXPECT_FALSE(obs::parseChannelList("power,bogus", &mask, &error));
    EXPECT_EQ(error, "bogus");
    EXPECT_FALSE(obs::parseChannelList("", &mask, &error));
}

TEST(ProbeRecorderHistory, CapBoundsStorageAndCountsOverflow)
{
    sim::Simulation simulation;
    core::ProbeRecorder probes(simulation, "probes");
    probes.setKeepHistory(true);
    probes.setHistoryLimit(100);

    for (unsigned i = 0; i < 250; ++i)
        probes.record(core::Probe::TimerAlarm);

    EXPECT_EQ(probes.count(core::Probe::TimerAlarm), 250u);
    EXPECT_EQ(probes.ticks(core::Probe::TimerAlarm).size(), 100u);
    EXPECT_EQ(probes.historyOverflows(), 150u);

    // The default cap is 64 Ki entries per probe.
    core::ProbeRecorder fresh(simulation, "fresh");
    EXPECT_EQ(fresh.historyCap(), 64u * 1024u);
}

TEST(ObsEnergy, ShardedEnergyTotalsMatchSequentialBitwise)
{
    const unsigned nodes = 16;
    const double seconds = 0.05;

    core::Network seq(oracleSpec(nodes, 1));
    core::Network par(oracleSpec(nodes, 4));
    seq.runForSeconds(seconds);
    par.runForSeconds(seconds);

    for (unsigned i = 0; i < nodes; ++i) {
        std::vector<core::ComponentPower> a = seq.node(i).powerReport();
        std::vector<core::ComponentPower> b = par.node(i).powerReport();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t row = 0; row < a.size(); ++row) {
            EXPECT_EQ(a[row].component, b[row].component);
            // Bitwise: the parallel kernel replays the same arithmetic.
            EXPECT_EQ(a[row].averageWatts, b[row].averageWatts)
                << "node" << i << " " << a[row].component;
            EXPECT_EQ(a[row].utilization, b[row].utilization);
        }
        EXPECT_EQ(seq.node(i).totalAverageWatts(),
                  par.node(i).totalAverageWatts());
    }
}
