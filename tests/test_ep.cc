/**
 * @file
 * Tests of the event processor: ISA encode/decode round trips, the ISR
 * assembler (directives, symbols, error cases), and the state machine's
 * execution semantics — lookup, fetch/execute timing, SWITCHON stalls,
 * TRANSFER block moves, WAKEUP handoff and WAIT_BUS arbitration against
 * an awake microcontroller, and overload behaviour.
 */

#include <gtest/gtest.h>

#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

// --------------------------------------------------------------------------
// ISA
// --------------------------------------------------------------------------

TEST(EpIsa, WordCountsMatchTable2)
{
    EXPECT_EQ(epInstrWords(EpOpcode::SWITCHON), 1u);
    EXPECT_EQ(epInstrWords(EpOpcode::SWITCHOFF), 1u);
    EXPECT_EQ(epInstrWords(EpOpcode::READ), 3u);
    EXPECT_EQ(epInstrWords(EpOpcode::WRITE), 3u);
    EXPECT_EQ(epInstrWords(EpOpcode::WRITEI), 3u);
    EXPECT_EQ(epInstrWords(EpOpcode::TRANSFER), 5u);
    EXPECT_EQ(epInstrWords(EpOpcode::TERMINATE), 1u);
    EXPECT_EQ(epInstrWords(EpOpcode::WAKEUP), 2u);
}

class EpIsaRoundTrip : public ::testing::TestWithParam<unsigned>
{};

TEST_P(EpIsaRoundTrip, EncodeDecodeIdentity)
{
    EpInstruction instr;
    instr.opcode = static_cast<EpOpcode>(GetParam());
    instr.operand5 = 0x15;
    instr.addrA = 0x1234;
    instr.addrB = 0x5678;
    instr.vector = 3;

    auto bytes = instr.encode();
    EXPECT_EQ(bytes.size(), epInstrWords(instr.opcode));
    auto decoded = EpInstruction::decode(bytes);
    ASSERT_TRUE(decoded);
    EXPECT_EQ(decoded->opcode, instr.opcode);
    EXPECT_EQ(decoded->operand5, instr.operand5);
    switch (instr.opcode) {
      case EpOpcode::READ:
      case EpOpcode::WRITE:
      case EpOpcode::WRITEI:
        EXPECT_EQ(decoded->addrA, instr.addrA);
        break;
      case EpOpcode::TRANSFER:
        EXPECT_EQ(decoded->addrA, instr.addrA);
        EXPECT_EQ(decoded->addrB, instr.addrB);
        break;
      case EpOpcode::WAKEUP:
        EXPECT_EQ(decoded->vector, instr.vector);
        break;
      default:
        break;
    }
    // Truncated input must not decode.
    bytes.pop_back();
    if (!bytes.empty())
        EXPECT_FALSE(EpInstruction::decode(bytes).has_value());
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, EpIsaRoundTrip,
                         ::testing::Range(0u, 8u));

TEST(EpIsa, TransferLengthEncoding)
{
    EpInstruction instr;
    instr.opcode = EpOpcode::TRANSFER;
    instr.operand5 = 0; // means 32
    EXPECT_EQ(instr.transferLength(), 32u);
    instr.operand5 = 7;
    EXPECT_EQ(instr.transferLength(), 7u);
}

TEST(EpIsa, OversizedOperandIsFatal)
{
    EpInstruction instr;
    instr.opcode = EpOpcode::SWITCHON;
    instr.operand5 = 40;
    EXPECT_THROW(instr.encode(), sim::FatalError);
}

// --------------------------------------------------------------------------
// EP assembler
// --------------------------------------------------------------------------

TEST(EpAssembler, AssemblesFigure5StyleIsr)
{
    EpProgram program = epAssemble(R"(
timer_isr:
    SWITCHON SENSOR
    READ SENSOR_DATA
    SWITCHOFF SENSOR
    SWITCHON MSGPROC
    WRITE MSG_PAYLOAD
    WRITEI MSG_CTRL, 1
    TERMINATE
.isr Timer0, timer_isr
)");
    // 1+3+1+1+3+3+1 = 13 bytes at the default base.
    EXPECT_EQ(program.code.size(), 13u);
    EXPECT_EQ(program.base, map::epIsrBase);
    ASSERT_EQ(program.isrBindings.size(), 1u);
    EXPECT_EQ(program.isrBindings.at(Irq::Timer0), map::epIsrBase);

    auto first = EpInstruction::decode(program.code);
    ASSERT_TRUE(first);
    EXPECT_EQ(first->opcode, EpOpcode::SWITCHON);
    EXPECT_EQ(first->operand5, 5u); // SENSOR
}

TEST(EpAssembler, ErrorsAreDiagnosed)
{
    EXPECT_THROW(epAssemble("BOGUS 1\n"), sim::FatalError);
    EXPECT_THROW(epAssemble("WRITEI MSG_CTRL, 99\n"), sim::FatalError);
    EXPECT_THROW(epAssemble("TRANSFER 0, 1, 40\n"), sim::FatalError);
    EXPECT_THROW(epAssemble("WAKEUP 9\n"), sim::FatalError);
    EXPECT_THROW(epAssemble("SWITCHON NOSUCH\n"), sim::FatalError);
    EXPECT_THROW(epAssemble(".isr NotAnIrq, x\nx: TERMINATE\n"),
                 sim::FatalError);
    EXPECT_THROW(epAssemble("READ 0x10\nREAD\n"), sim::FatalError);
}

TEST(EpAssembler, SymbolArithmeticAndEqu)
{
    EpProgram program = epAssemble(
        ".equ MYREG, 0x1234\n"
        "entry:\n"
        "READ MYREG+2\n"
        "TERMINATE\n");
    auto instr = EpInstruction::decode(program.code);
    EXPECT_EQ(instr->addrA, 0x1236);
    EXPECT_EQ(program.symbol("entry"), map::epIsrBase);
    EXPECT_THROW(program.symbol("nope"), sim::FatalError);
}

// --------------------------------------------------------------------------
// Execution semantics
// --------------------------------------------------------------------------

namespace {

struct EpExec : ::testing::Test
{
    sim::Simulation simulation;
    NodeConfig cfg;
    std::unique_ptr<SensorNode> node;

    void
    SetUp() override
    {
        cfg.sensorSignal = [](sim::Tick) { return 0x5C; };
        node = std::make_unique<SensorNode>(simulation, "node", cfg);
    }

    void
    loadAndFire(const std::string &ep_source, Irq irq)
    {
        node->loadEpProgram(epAssemble(ep_source));
        node->irqBus().post(irq);
    }

    void advance(double seconds) { simulation.runForSeconds(seconds); }
};

} // namespace

TEST_F(EpExec, ReadWriteMovesDataThroughRegister)
{
    node->memory().poke(0x0500, 0x77);
    loadAndFire(R"(
isr:
    READ 0x0500
    WRITE 0x0501
    TERMINATE
.isr Timer0, isr
)",
                Irq::Timer0);
    advance(0.01);
    EXPECT_EQ(node->memory().peek(0x0501), 0x77);
    EXPECT_EQ(node->ep().state(), EventProcessor::State::Ready);
    EXPECT_EQ(node->ep().isrsExecuted(), 1u);
}

TEST_F(EpExec, WriteImmediatePutsOperandOnBus)
{
    loadAndFire(R"(
isr:
    WRITEI 0x0502, 21
    TERMINATE
.isr Timer0, isr
)",
                Irq::Timer0);
    advance(0.01);
    EXPECT_EQ(node->memory().peek(0x0502), 21);
}

TEST_F(EpExec, TransferMovesBlocks)
{
    for (unsigned i = 0; i < 16; ++i)
        node->memory().poke(static_cast<std::uint16_t>(0x0500 + i),
                            static_cast<std::uint8_t>(i * 3));
    loadAndFire(R"(
isr:
    TRANSFER 0x0500, 0x0600, 16
    TERMINATE
.isr Timer0, isr
)",
                Irq::Timer0);
    advance(0.01);
    for (unsigned i = 0; i < 16; ++i) {
        EXPECT_EQ(node->memory().peek(static_cast<std::uint16_t>(0x0600 + i)),
                  static_cast<std::uint8_t>(i * 3));
    }
}

TEST_F(EpExec, SwitchOnStallsForWakeupAck)
{
    node->powerCtrl().switchOff(ComponentId::Sensor);
    node->probes().setKeepHistory(true);
    loadAndFire(R"(
isr:
    SWITCHON SENSOR
    READ 0x1501
    WRITE 0x0503
    TERMINATE
.isr Timer0, isr
)",
                Irq::Timer0);
    advance(0.01);
    // The read happened after the ack, so the sample is valid, not bus
    // garbage.
    EXPECT_EQ(node->memory().peek(0x0503), 0x5C);
    EXPECT_TRUE(node->powerCtrl().isOn(ComponentId::Sensor));
}

TEST_F(EpExec, BusyCyclesAreAccounted)
{
    loadAndFire(R"(
isr:
    READ 0x0500
    TERMINATE
.isr Timer0, isr
)",
                Irq::Timer0);
    advance(0.01);
    // lookup 3 + fetch 3 + exec 1 + fetch 1 + exec 1 = 9 cycles.
    EXPECT_EQ(node->ep().busyCycles(), 9u);
    EXPECT_EQ(node->ep().instructionsExecuted(), 2u);
}

TEST_F(EpExec, UnboundInterruptIsIgnoredWithWarning)
{
    sim::setQuiet(true);
    node->irqBus().post(Irq::Timer3);
    advance(0.01);
    sim::setQuiet(false);
    EXPECT_EQ(node->ep().state(), EventProcessor::State::Ready);
    EXPECT_EQ(node->ep().isrsExecuted(), 1u); // consumed, no work
}

TEST_F(EpExec, WakeupHandsOffToMcuAndWaitsForBus)
{
    // uC program: write a marker, then sleep.
    mcu::Image image = mcu::assemble(
        sim::csprintf(".org %u\n", map::mcuCodeBase) +
            "handler:\n"
            "LDI r0, 0x99\n"
            "STS 0x0504, r0\n"
            "SLEEP\n",
        epDefaultSymbols());
    node->loadMcuProgram(image);
    node->setMcuVector(2, image.symbol("handler"));

    loadAndFire(R"(
isr:
    WAKEUP 2
.isr Timer0, isr
)",
                Irq::Timer0);
    advance(0.05);
    EXPECT_EQ(node->memory().peek(0x0504), 0x99);
    EXPECT_EQ(node->micro().wakeups(), 1u);
    EXPECT_FALSE(node->micro().awake());
    EXPECT_EQ(node->probes().count(Probe::McuSlept), 1u);
}

TEST_F(EpExec, EpWaitsWhileMcuHoldsBus)
{
    // uC busy-spins for a long time before sleeping; an interrupt posted
    // meanwhile must park the EP in WAIT_BUS until the uC sleeps.
    mcu::Image image = mcu::assemble(
        sim::csprintf(".org %u\n", map::mcuCodeBase) +
            "handler:\n"
            "LDI r1, 200\n"
            "spin:\n"
            "DEC r1\n"
            "JNZ spin\n"
            "SLEEP\n",
        epDefaultSymbols());
    node->loadMcuProgram(image);
    node->setMcuVector(0, image.symbol("handler"));

    node->loadEpProgram(epAssemble(R"(
wake_isr:
    WAKEUP 0
mark_isr:
    WRITEI 0x0505, 7
    TERMINATE
.isr Timer0, wake_isr
.isr Timer1, mark_isr
)"));

    node->irqBus().post(Irq::Timer0);
    advance(0.002); // uC is awake and spinning (~1000 cycles at 100 kHz)
    EXPECT_TRUE(node->micro().awake());

    node->irqBus().post(Irq::Timer1);
    simulation.runFor(node->clock().cyclesToTicks(4));
    EXPECT_EQ(node->ep().state(), EventProcessor::State::WaitBus);
    EXPECT_EQ(node->memory().peek(0x0505), 0); // not yet serviced

    advance(0.05); // uC sleeps; EP resumes and services Timer1
    EXPECT_EQ(node->memory().peek(0x0505), 7);
    EXPECT_FALSE(node->micro().awake());
}

TEST_F(EpExec, BackToBackInterruptsServiceInPriorityOrder)
{
    loadAndFire(R"(
low_isr:
    WRITEI 0x0506, 1
    TERMINATE
high_isr:
    WRITEI 0x0507, 2
    TERMINATE
.isr RadioTxDone, low_isr
.isr Timer0, high_isr
)",
                Irq::RadioTxDone);
    node->irqBus().post(Irq::Timer0);
    // Both pending before the EP runs: Timer0 (lower code) goes first.
    // We can't observe order in memory (both complete); check the EP
    // serviced two ISRs and ended Ready.
    advance(0.01);
    EXPECT_EQ(node->ep().isrsExecuted(), 2u);
    EXPECT_EQ(node->memory().peek(0x0506), 1);
    EXPECT_EQ(node->memory().peek(0x0507), 2);
    EXPECT_EQ(node->ep().state(), EventProcessor::State::Ready);
}

TEST_F(EpExec, OverloadDropsEventsInsteadOfQueueing)
{
    // A 10-cycle periodic timer against a ~102-cycle send path: most
    // alarms find Timer0 still asserted and are dropped (paper §4.2.4).
    // With fixed-priority arbitration the always-pending Timer0 starves
    // the send pipeline entirely — overload degrades, it never queues.
    sim::setQuiet(true);
    apps::AppParams params;
    params.samplePeriodCycles = 10;
    apps::install(*node, apps::buildApp1(params));
    advance(0.1);
    sim::setQuiet(false);
    EXPECT_GT(node->irqBus().dropped(), 100u);
    EXPECT_GT(node->ep().isrsExecuted(), 100u); // still servicing
    EXPECT_LT(node->radio().framesSent(), 5u);  // starved, not crashed

    // Below saturation the pipeline flows normally.
    sim::Simulation sim2;
    NodeConfig cfg2;
    cfg2.sensorSignal = [](sim::Tick) { return 1; };
    SensorNode healthy(sim2, "healthy", cfg2);
    params.samplePeriodCycles = 200;
    apps::install(healthy, apps::buildApp1(params));
    sim2.runForSeconds(0.1);
    EXPECT_GT(healthy.radio().framesSent(), 40u);
    EXPECT_EQ(healthy.irqBus().dropped(), 0u);
}

TEST_F(EpExec, IdleEpKeepsNoEventsQueued)
{
    advance(0.001);
    std::uint64_t processed = simulation.eventq().numProcessed();
    advance(1.0); // nothing pending: the queue must stay quiet
    EXPECT_EQ(simulation.eventq().numProcessed(), processed);
}
