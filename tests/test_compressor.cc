/**
 * @file
 * Tests of the delta-compression slave (the §7 future-work accelerator):
 * codec round trips (property-swept over signal shapes), compression
 * ratios, the memory-mapped append/batch behaviour, and a full
 * compressed-telemetry pipeline where the EP moves encoded blocks into
 * 802.15.4 frames without ever branching.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/apps.hh"
#include "core/compressor.hh"
#include "core/sensor_node.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

// --------------------------------------------------------------------------
// Codec
// --------------------------------------------------------------------------

namespace {

std::vector<std::uint8_t>
smoothSignal(std::size_t n, std::uint64_t seed)
{
    sim::Random rng(seed);
    std::vector<std::uint8_t> v(n);
    double level = 128.0;
    for (auto &b : v) {
        level += rng.normal(0.0, 2.0);
        level = std::clamp(level, 0.0, 255.0);
        b = static_cast<std::uint8_t>(std::lround(level));
    }
    return v;
}

std::vector<std::uint8_t>
randomSignal(std::size_t n, std::uint64_t seed)
{
    sim::Random rng(seed);
    std::vector<std::uint8_t> v(n);
    for (auto &b : v)
        b = static_cast<std::uint8_t>(rng.uniformInt(0, 255));
    return v;
}

} // namespace

TEST(CompressorCodec, EdgeCases)
{
    EXPECT_TRUE(Compressor::encode({}).empty());
    EXPECT_TRUE(Compressor::decode({}).empty());

    std::vector<std::uint8_t> one{42};
    EXPECT_EQ(Compressor::encode(one), one);
    EXPECT_EQ(Compressor::decode(one), one);

    // A constant block: first byte + zero deltas pack two per byte.
    std::vector<std::uint8_t> flat(21, 99);
    auto encoded = Compressor::encode(flat);
    EXPECT_EQ(encoded.size(), 1 + 10u);
    EXPECT_EQ(Compressor::decode(encoded), flat);
}

TEST(CompressorCodec, EscapesLargeJumps)
{
    std::vector<std::uint8_t> jumps{0, 255, 0, 255, 128};
    auto encoded = Compressor::encode(jumps);
    EXPECT_EQ(Compressor::decode(encoded), jumps);
    // All-escape data expands (3 nibbles per sample).
    EXPECT_GT(encoded.size(), jumps.size());
}

class CompressorRoundTrip : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(CompressorRoundTrip, SmoothAndRandomSignals)
{
    for (std::size_t n : {2u, 7u, 20u, 21u, 32u}) {
        auto smooth = smoothSignal(n, GetParam());
        EXPECT_EQ(Compressor::decode(Compressor::encode(smooth)), smooth);
        auto noisy = randomSignal(n, GetParam() + 1);
        EXPECT_EQ(Compressor::decode(Compressor::encode(noisy)), noisy);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompressorRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u));

TEST(CompressorCodec, CompressesSlowlyVaryingData)
{
    auto smooth = smoothSignal(20, 5);
    auto encoded = Compressor::encode(smooth);
    // Mostly nibble deltas: close to half size.
    EXPECT_LT(encoded.size(), smooth.size() * 0.75);
}

// --------------------------------------------------------------------------
// Device behaviour
// --------------------------------------------------------------------------

namespace {

struct CompressorDevice : ::testing::Test
{
    sim::Simulation simulation;
    NodeConfig cfg;
    std::unique_ptr<SensorNode> node;

    void
    SetUp() override
    {
        cfg.sensorSignal = [](sim::Tick) { return 100; };
        node = std::make_unique<SensorNode>(simulation, "node", cfg);
    }

    std::uint8_t rd(map::Addr a) { return node->dataBus().read(a); }
    void wr(map::Addr a, std::uint8_t v) { node->dataBus().write(a, v); }
    void advance(double s) { simulation.runForSeconds(s); }
};

} // namespace

TEST_F(CompressorDevice, AppendCountsAndEncodesOnCommand)
{
    for (std::uint8_t v : {100, 101, 103, 102})
        wr(comp::base + comp::append, v);
    EXPECT_EQ(rd(comp::base + comp::inLen), 4);

    wr(comp::base + comp::ctrl, 1);
    advance(0.01);
    EXPECT_EQ(node->compressor().blocksEncoded(), 1u);
    EXPECT_EQ(rd(comp::base + comp::status) & 0x2, 0x2); // done

    std::uint8_t out_len = rd(comp::base + comp::outLen);
    std::vector<std::uint8_t> encoded;
    for (unsigned i = 0; i < out_len; ++i)
        encoded.push_back(
            rd(static_cast<map::Addr>(comp::base + comp::outBuf + i)));
    EXPECT_EQ(Compressor::decode(encoded),
              (std::vector<std::uint8_t>{100, 101, 103, 102}));
    EXPECT_EQ(rd(comp::base + comp::inLen), 0); // consumed
}

TEST_F(CompressorDevice, BatchTriggersAutomaticEncode)
{
    wr(comp::base + comp::batch, 3);
    wr(comp::base + comp::append, 10);
    wr(comp::base + comp::append, 11);
    EXPECT_EQ(node->compressor().blocksEncoded(), 0u);
    wr(comp::base + comp::append, 12);
    advance(0.01);
    EXPECT_EQ(node->compressor().blocksEncoded(), 1u);
}

TEST_F(CompressorDevice, OverflowIsCountedNotFatal)
{
    for (unsigned i = 0; i < 40; ++i)
        wr(comp::base + comp::append, static_cast<std::uint8_t>(i));
    EXPECT_EQ(rd(comp::base + comp::inLen), 32);
    EXPECT_GE(static_cast<std::uint64_t>(
                  static_cast<const sim::stats::Scalar *>(
                      node->compressor().findStat("overflows"))
                      ->value()),
              8u);
}

TEST_F(CompressorDevice, PowerGatingClearsState)
{
    wr(comp::base + comp::append, 1);
    node->powerCtrl().switchOff(ComponentId::Compressor);
    node->powerCtrl().switchOn(ComponentId::Compressor);
    advance(0.001);
    EXPECT_EQ(rd(comp::base + comp::inLen), 0);
}

// --------------------------------------------------------------------------
// End-to-end compressed telemetry
// --------------------------------------------------------------------------

TEST(CompressedTelemetry, EpPipelineDeliversDecodableBatches)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    // A slow ramp: ideal for delta coding.
    cfg.sensorSignal = [](sim::Tick now) -> std::uint8_t {
        return static_cast<std::uint8_t>(
            100 + (sim::ticksToSeconds(now) * 10.0));
    };
    SensorNode node(simulation, "node", cfg);

    // Timer ISR appends samples to the compressor; a full batch encodes
    // and the EP forwards the encoded block through the message
    // processor — the encoded length moves through the EP's register
    // (READ; WRITE), no branching required.
    apps::NodeApp app;
    app.name = "compressed-telemetry";
    app.ep = epAssemble(R"(
timer_isr:
    SWITCHON SENSOR
    READ SENSOR_DATA
    SWITCHOFF SENSOR
    WRITE COMP_APPEND
    TERMINATE

compdone_isr:
    SWITCHON MSGPROC
    TRANSFER COMP_OUTBUF, MSG_PAYLOAD, 21
    READ COMP_OUTLEN
    WRITE MSG_PAYLOAD_LEN
    WRITEI MSG_CTRL, 1
    TERMINATE

txready_isr:
    SWITCHON RADIO
    READ MSG_OUT_LEN
    WRITE RADIO_TXLEN
    TRANSFER MSG_OUTBUF, RADIO_TXFIFO, 32
    SWITCHOFF MSGPROC
    WRITEI RADIO_CTRL, 1
    TERMINATE

txdone_isr:
    SWITCHOFF RADIO
    TERMINATE

.isr Timer0, timer_isr
.isr CompDone, compdone_isr
.isr MsgTxReady, txready_isr
.isr RadioTxDone, txdone_isr
)");
    std::string mc = sim::csprintf(".equ MCU_CODE, %u\n", map::mcuCodeBase);
    mc += R"(
.org MCU_CODE
init:
    LDI r0, 16
    STS COMP_BATCH, r0
    LDI r0, 0x03
    STS TIMER0_LOADHI, r0
    LDI r0, 0xE8
    STS TIMER0_LOADLO, r0     ; 1000 cycles = 100 Hz
    LDI r0, 3
    STS TIMER0_CTRL, r0
    SLEEP
)";
    app.mcu = mcu::assemble(mc, epDefaultSymbols());
    app.initEntry = app.mcu.symbol("init");
    apps::install(node, app);

    simulation.runForSeconds(5.0);

    // 500 samples at 16 per batch: ~31 packets.
    std::uint64_t frames = node.radio().framesSent();
    EXPECT_GE(frames, 29u);
    EXPECT_LE(frames, 32u);

    // The delivered payload decodes to 16 in-order samples of the ramp.
    const net::Frame &frame = node.radio().lastTxFrame();
    auto samples = Compressor::decode(frame.payload);
    ASSERT_EQ(samples.size(), 16u);
    for (std::size_t i = 1; i < samples.size(); ++i)
        EXPECT_GE(samples[i] + 1, samples[i - 1]); // nondecreasing ramp

    // And the encoded payload is smaller than the raw batch.
    EXPECT_LT(frame.payload.size(), 16u);
    EXPECT_EQ(node.compressor().blocksEncoded(), frames);
}
