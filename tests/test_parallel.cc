/**
 * @file
 * Parallel-kernel tests: the sharded conservative-sync simulation must
 * reproduce the single-threaded kernel exactly, not approximately. The
 * core oracle is a 64-node near-saturation network (heavy collisions)
 * run at 1, 2 and 4 shards: every headline counter must be identical,
 * and the merged statistics tree must be byte-identical.
 *
 * Also covers the kernel-level machinery the parallel mode leans on:
 * the (origin tick, sequence) event ordering key, scheduleCrossShard
 * placement, the SPSC flight mailbox, and stats tree merging.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/apps.hh"
#include "core/network.hh"
#include "core/sensor_node.hh"
#include "net/channel.hh"
#include "net/pool.hh"
#include "net/relay.hh"
#include "scenario/spec.hh"
#include "sim/parallel.hh"
#include "sim/simulation.hh"

using namespace ulp;

namespace {

/** The bench workload: app v1 nodes near channel saturation. */
scenario::NetworkSpec
benchSpec(unsigned nodes, unsigned threads)
{
    scenario::NetworkSpec spec;
    spec.threads = threads;
    spec.channelSeed = 42;
    for (unsigned i = 0; i < nodes; ++i) {
        core::NodeConfig nc;
        nc.address = static_cast<std::uint16_t>(1 + i);
        nc.seed = 1000 + i;
        nc.sensorSignal = [](sim::Tick) { return 200; };
        core::apps::AppParams params;
        params.samplePeriodCycles = 2500 + 37 * i;
        spec.addNode().withConfig(nc).withPrebuiltApp(
            core::apps::buildApp1(params));
    }
    return spec;
}

core::Network::Counters
runBenchNetwork(unsigned nodes, unsigned threads, double seconds)
{
    core::Network network(benchSpec(nodes, threads));
    network.runForSeconds(seconds);
    return network.counters();
}

/** The bench workload on a 40 m grid under the spatial radio model —
 *  the configuration where locality partitioning actually severs shard
 *  pairs, so it exercises the per-pair-lookahead kernel path. */
scenario::NetworkSpec
gridSpec(unsigned nodes, unsigned threads)
{
    unsigned side = 1;
    while (side * side < nodes)
        ++side;
    net::SpatialConfig radio;
    radio.pathLossExponent = 2.8;
    radio.sensitivityDbm = -90.0;

    scenario::NetworkSpec spec;
    spec.withThreads(threads).withSpatial(radio);
    spec.channelSeed = 42;
    for (unsigned i = 0; i < nodes; ++i) {
        core::NodeConfig nc;
        nc.address = static_cast<std::uint16_t>(1 + i);
        nc.seed = 1000 + i;
        nc.sensorSignal = [](sim::Tick) { return 200; };
        core::apps::AppParams params;
        params.samplePeriodCycles = 2500 + 37 * (i % 64);
        spec.addNode()
            .withConfig(nc)
            .withApp("app1")
            .withParams(params)
            .at(40.0 * (i % side), 40.0 * (i / side));
    }
    return spec;
}

core::Network::Counters
runGridNetwork(unsigned nodes, unsigned threads, double seconds)
{
    core::Network network(gridSpec(nodes, threads));
    network.runForSeconds(seconds);
    return network.counters();
}

TEST(ParallelNetwork, MatchesDirectSequentialBuild)
{
    // Guard the Network refactor: threads=1 through core::Network must be
    // bit-identical to building the simulation by hand the way the bench
    // and ulpsim always did.
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel",
                         net::Channel::defaultBitRate, 42);
    std::vector<std::unique_ptr<core::SensorNode>> nodes;
    for (unsigned i = 0; i < 8; ++i) {
        core::NodeConfig nc;
        nc.address = static_cast<std::uint16_t>(1 + i);
        nc.seed = 1000 + i;
        nc.sensorSignal = [](sim::Tick) { return 200; };
        nodes.push_back(std::make_unique<core::SensorNode>(
            simulation, "node" + std::to_string(i), nc, &channel));
        core::apps::AppParams params;
        params.samplePeriodCycles = 2500 + 37 * i;
        core::apps::install(*nodes.back(), core::apps::buildApp1(params));
    }
    simulation.runForSeconds(0.05);

    core::Network::Counters got = runBenchNetwork(8, 1, 0.05);
    EXPECT_EQ(got.eventsProcessed, simulation.eventq().numProcessed());
    EXPECT_EQ(got.framesDelivered, channel.framesDelivered());
    EXPECT_EQ(got.collisions, channel.collisions());
    EXPECT_EQ(got.endTick, simulation.curTick());
    std::uint64_t sent = 0;
    for (const auto &node : nodes)
        sent += node->radio().framesSent();
    EXPECT_EQ(got.framesSent, sent);
    EXPECT_GT(got.framesSent, 0u);
}

TEST(ParallelNetwork, DeterminismAcrossThreadCounts)
{
    // The acceptance oracle: 64 nodes near saturation, so the run is
    // dense with cross-shard collisions, at K = 1, 2, 4 shards.
    core::Network::Counters k1 = runBenchNetwork(64, 1, 0.05);
    core::Network::Counters k2 = runBenchNetwork(64, 2, 0.05);
    core::Network::Counters k4 = runBenchNetwork(64, 4, 0.05);

    EXPECT_GT(k1.framesSent, 0u);
    EXPECT_GT(k1.collisions, 0u); // saturation: the hard case is exercised

    EXPECT_EQ(k1, k2);
    EXPECT_EQ(k1, k4);
}

TEST(ParallelNetwork, RepeatedParallelRunsAreDeterministic)
{
    core::Network::Counters a = runBenchNetwork(16, 4, 0.05);
    core::Network::Counters b = runBenchNetwork(16, 4, 0.05);
    EXPECT_EQ(a, b);
}

TEST(ParallelNetwork, MergedStatsByteIdentical)
{
    core::Network seq(benchSpec(16, 1));
    core::Network par(benchSpec(16, 4));
    seq.runForSeconds(0.05);
    par.runForSeconds(0.05);

    std::ostringstream a, b;
    seq.dumpStats(a);
    par.dumpStats(b);
    EXPECT_EQ(a.str(), b.str());
}

TEST(ParallelNetwork, SpatialGridDeterminismAcrossThreadCounts)
{
    // Same oracle as above, but on the spatial grid: locality
    // partitioning plus per-pair lookahead must still merge to the
    // sequential counters bit-for-bit.
    core::Network::Counters k1 = runGridNetwork(64, 1, 0.05);
    core::Network::Counters k2 = runGridNetwork(64, 2, 0.05);
    core::Network::Counters k4 = runGridNetwork(64, 4, 0.05);

    EXPECT_GT(k1.framesSent, 0u);
    EXPECT_EQ(k1, k2);
    EXPECT_EQ(k1, k4);
}

TEST(ParallelNetwork, TenThousandNodeGridIsDeterministic)
{
    // The memory-scaling point: 10k nodes must build (pooled frame
    // records, reserved per-shard queues) and reproduce exactly across
    // reruns and across shard counts.
    core::Network::Counters a = runGridNetwork(10'000, 1, 0.05);
    core::Network::Counters b = runGridNetwork(10'000, 1, 0.05);
    core::Network::Counters k2 = runGridNetwork(10'000, 2, 0.05);

    EXPECT_GT(a.framesSent, 0u);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, k2);
}

TEST(ParallelNetwork, ChurnedNodesReviveOnTheirHomeShard)
{
    // Node death + revival under the locality partition: the revived
    // node must come back on its original shard (Network panics if it
    // does not — the partition's lookahead map would be wrong), and the
    // churned run must stay thread-count invariant. Victims sit in
    // opposite grid corners so at K=4 they land on different shards.
    auto churn = [](unsigned threads) {
        core::Network network(gridSpec(64, threads));
        for (unsigned victim : {5u, 58u}) {
            network.scheduleNodePowerOff(victim, sim::secondsToTicks(0.01));
            network.scheduleNodeRevive(victim, sim::secondsToTicks(0.03));
        }
        network.runForSeconds(0.05);
        return network.counters();
    };
    core::Network::Counters k1 = churn(1);
    core::Network::Counters k4 = churn(4);
    EXPECT_GT(k1.framesSent, 0u);
    EXPECT_EQ(k1, k4);
}

TEST(ParallelNetwork, SpecValidation)
{
    scenario::NetworkSpec spec = benchSpec(2, 4);
    EXPECT_THROW(core::Network{spec}, sim::FatalError); // threads > nodes
    spec = benchSpec(2, 0);
    EXPECT_THROW(core::Network{spec}, sim::FatalError);
    spec = scenario::NetworkSpec{};                     // zero nodes
    EXPECT_THROW(core::Network{spec}, sim::FatalError);
    spec = benchSpec(4, 2);
    spec.nodes[0].prebuiltApp.reset();
    spec.nodes[0].app = "no-such-app";                  // buildByName fatal
    EXPECT_THROW(core::Network{spec}, sim::FatalError);
}

// --------------------------------------------------------------------------
// Scheduler epoch arithmetic and pair lookahead.
// --------------------------------------------------------------------------

TEST(ParallelScheduler, EndOfTimeEpochArithmetic)
{
    // Regression (S2): epoch_start + epoch_len used to overflow Tick
    // when the lookahead or horizon sat near maxTick, wrapping the epoch
    // window back to ~0. The clamped arithmetic must terminate and leave
    // every queue exactly at the horizon.
    sim::EventQueue q0, q1;
    sim::ParallelScheduler sched(sim::maxTick - 5);
    sched.addShard(q0, nullptr);
    sched.addShard(q1, nullptr);
    sched.run(sim::maxTick - 2);
    EXPECT_EQ(q0.curTick(), sim::maxTick - 2);
    EXPECT_EQ(q1.curTick(), sim::maxTick - 2);
}

TEST(ParallelScheduler, SeveredPairsRunTheHorizonInOneEpoch)
{
    // A pair severed in both directions (maxTick lookahead) must not
    // bound each other's epochs: a long horizon with a short global
    // lookahead completes instantly instead of in horizon/lookahead
    // barrier rounds.
    sim::EventQueue q0, q1;
    int ran = 0;
    sim::EventFunctionWrapper ev([&] { ++ran; }, "ev");
    q0.schedule(&ev, 1000);

    sim::ParallelScheduler sched(100);
    sched.addShard(q0, nullptr);
    sched.addShard(q1, nullptr);
    sched.setPairLookahead(0, 1, sim::maxTick);
    sched.setPairLookahead(1, 0, sim::maxTick);
    sched.run(1'000'000'000'000ull);
    EXPECT_EQ(ran, 1);
    EXPECT_EQ(q0.curTick(), 1'000'000'000'000ull);
    EXPECT_EQ(q1.curTick(), 1'000'000'000'000ull);
}

// --------------------------------------------------------------------------
// Pooled delivery allocator.
// --------------------------------------------------------------------------

/** Payload with an integrity stamp so a clobbered slot is detected. */
struct PoolPayload
{
    std::uint64_t tag;
    std::uint64_t check;
    explicit PoolPayload(std::uint64_t t) : tag(t), check(~t) {}
};

/** Random acquire/release interleaving against one pool; returns false
 *  on any duplicate slot, clobbered payload, or live-count mismatch. */
bool
hammerPool(std::uint64_t seed, int steps)
{
    net::ObjectPool<PoolPayload> pool;
    std::vector<PoolPayload *> live;
    std::set<PoolPayload *> liveSet;
    std::uint64_t lcg = seed;
    std::uint64_t next_tag = 1;
    auto rng = [&] {
        lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
        return lcg >> 33;
    };
    for (int step = 0; step < steps; ++step) {
        if (live.empty() || rng() % 2 == 0) {
            PoolPayload *p = pool.acquire(next_tag++);
            if (!liveSet.insert(p).second)
                return false; // handed out a slot that is still live
            live.push_back(p);
        } else {
            std::size_t victim = rng() % live.size();
            PoolPayload *p = live[victim];
            if (p->check != ~p->tag)
                return false; // payload was clobbered while live
            pool.release(p);
            liveSet.erase(p);
            live[victim] = live.back();
            live.pop_back();
        }
        if (pool.live() != live.size())
            return false;
    }
    for (PoolPayload *p : live) {
        if (p->check != ~p->tag)
            return false;
        pool.release(p);
    }
    return pool.live() == 0;
}

TEST(ObjectPool, RandomInterleavingsPreserveIntegrity)
{
    // S4 property test (run under ASan in CI): no slot is handed out
    // twice while live, payloads survive arbitrary alloc/free orders,
    // and the live count tracks exactly.
    EXPECT_TRUE(hammerPool(0x9E3779B97F4A7C15ull, 20'000));
}

TEST(ObjectPool, DestructorReclaimsLiveObjects)
{
    // Tearing a pool down with objects still live (in-flight frames at
    // medium destruction) must run their destructors exactly once.
    static int destroyed;
    destroyed = 0;
    struct Counted
    {
        ~Counted() { ++destroyed; }
    };
    {
        net::ObjectPool<Counted> pool;
        pool.acquire();
        Counted *freed = pool.acquire();
        pool.acquire();
        pool.release(freed);
        EXPECT_EQ(destroyed, 1);
    }
    EXPECT_EQ(destroyed, 3); // the two still-live objects swept, once each
}

TEST(ObjectPool, IndependentPoolsOnSeparateThreads)
{
    // The single-owner contract (run under TSan in CI): two shards with
    // their own pools never share slots or metadata, so concurrent use
    // of independent pools is race-free by construction.
    bool ok1 = false, ok2 = false;
    std::thread t1([&] { ok1 = hammerPool(1, 10'000); });
    std::thread t2([&] { ok2 = hammerPool(2, 10'000); });
    t1.join();
    t2.join();
    EXPECT_TRUE(ok1);
    EXPECT_TRUE(ok2);
}

// --------------------------------------------------------------------------
// Event-queue ordering machinery.
// --------------------------------------------------------------------------

TEST(EventQueueCrossShard, OriginTickOrdersSameTickEvents)
{
    sim::EventQueue queue;
    std::vector<int> order;

    // Local event scheduled "now" (origin 0) at tick 100.
    sim::EventFunctionWrapper local([&] { order.push_back(1); }, "local");
    queue.schedule(&local, 100);

    // A relayed event carrying an *earlier* origin must run first even
    // though it was inserted later; one carrying the same origin ties
    // after the local event (later sequence number).
    sim::EventFunctionWrapper early([&] { order.push_back(0); }, "early");
    queue.scheduleCrossShard(&early, 100, 0);
    sim::EventFunctionWrapper tied([&] { order.push_back(2); }, "tied");
    queue.scheduleCrossShard(&tied, 100, 0);

    // With a *later* origin than a subsequently scheduled local event,
    // the relayed event runs after it. (Origin ticks dominate sequence.)
    sim::EventFunctionWrapper late([&] { order.push_back(4); }, "late");
    queue.scheduleCrossShard(&late, 100, 50);

    queue.runUntil(100);
    // local(origin 0, seq 0), early(origin 0, seq 1), tied(origin 0,
    // seq 2), late(origin 50).
    EXPECT_EQ(order, (std::vector<int>{1, 0, 2, 4}));
}

TEST(EventQueueCrossShard, RejectsOriginAfterEventTick)
{
    sim::EventQueue queue;
    sim::EventFunctionWrapper ev([] {}, "ev");
    EXPECT_THROW(queue.scheduleCrossShard(&ev, 10, 20), sim::PanicError);
}

TEST(EventQueueCrossShard, DescheduleRescheduleAcrossEpochKeepsFifo)
{
    // A component descheduling an event in one epoch and rescheduling it
    // in a later one (MAC timers do this) must land *behind* same-tick
    // events already queued: the fresh (origin, seq) key is larger.
    sim::EventQueue queue;
    std::vector<char> order;

    sim::EventFunctionWrapper a([&] { order.push_back('a'); }, "a");
    sim::EventFunctionWrapper b([&] { order.push_back('b'); }, "b");
    sim::EventFunctionWrapper tick([&] {}, "tick");

    queue.schedule(&a, 1'000'000);
    queue.schedule(&b, 1'000'000);

    // Cross an epoch boundary (352 us lookahead => epoch ~352,000 ticks):
    // advance time, then pull 'a' out and put it back at the same tick.
    queue.schedule(&tick, 400'000);
    queue.runUntil(500'000);
    queue.deschedule(&a);
    queue.schedule(&a, 1'000'000);

    queue.runUntil(2'000'000);
    EXPECT_EQ(order, (std::vector<char>{'b', 'a'}));

    // reschedule() must behave exactly like deschedule()+schedule().
    order.clear();
    sim::EventFunctionWrapper c([&] { order.push_back('c'); }, "c");
    sim::EventFunctionWrapper d([&] { order.push_back('d'); }, "d");
    queue.schedule(&c, 3'000'000);
    queue.schedule(&d, 3'000'000);
    queue.runUntil(2'500'000);
    queue.reschedule(&c, 3'000'000);
    queue.runUntil(3'000'000);
    EXPECT_EQ(order, (std::vector<char>{'d', 'c'}));
}

// --------------------------------------------------------------------------
// Flight mailbox and relay.
// --------------------------------------------------------------------------

TEST(FlightMailbox, FifoAndCapacity)
{
    net::FlightMailbox box;
    for (std::uint64_t i = 0; i < net::FlightMailbox::capacity; ++i) {
        net::FlightRecord rec;
        rec.start = i;
        rec.originSeq = i;
        ASSERT_TRUE(box.push(rec));
    }
    EXPECT_FALSE(box.push(net::FlightRecord{})); // full

    std::uint64_t expect = 0;
    box.drain([&](const net::FlightRecord &rec) {
        EXPECT_EQ(rec.originSeq, expect);
        ++expect;
    });
    EXPECT_EQ(expect, net::FlightMailbox::capacity);
    EXPECT_TRUE(box.push(net::FlightRecord{})); // space again
}

TEST(FrameRelay, LookaheadIsMinimalFrameAirtime)
{
    net::FrameRelay relay(2);
    // Smallest frame: 11 bytes of header+FCS at 250 kbit/s = 352 us.
    EXPECT_EQ(relay.lookahead(), sim::secondsToTicks(11 * 8.0 / 250'000.0));
    EXPECT_EQ(relay.lookahead(), 352'000u);
}

// --------------------------------------------------------------------------
// Stats merging.
// --------------------------------------------------------------------------

TEST(StatsMerge, ScalarsAndDistributionsFold)
{
    sim::stats::Group a, b;
    sim::stats::Scalar sa(&a, "frames", "d");
    sim::stats::Scalar sb(&b, "frames", "d");
    sim::stats::Distribution da(&a, "lat", "d");
    sim::stats::Distribution db(&b, "lat", "d");

    sa += 3;
    sb += 4;
    da.sample(1.0);
    da.sample(3.0);
    db.sample(5.0);

    a.mergeFrom(b);
    EXPECT_DOUBLE_EQ(sa.value(), 7.0);
    EXPECT_EQ(da.count(), 3u);
    EXPECT_DOUBLE_EQ(da.max(), 5.0);
    EXPECT_DOUBLE_EQ(da.mean(), 3.0);
    // The source is untouched.
    EXPECT_DOUBLE_EQ(sb.value(), 4.0);
}

} // namespace
