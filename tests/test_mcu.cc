/**
 * @file
 * Tests of the U8 microcontroller substrate: the two-pass assembler
 * (formats, directives, expressions, errors), the disassembler round
 * trip, and the core's instruction semantics, flags, stack, interrupts,
 * sleep, and cycle accounting.
 */

#include <gtest/gtest.h>

#include <map>

#include "mcu/assembler.hh"
#include "mcu/mcu.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::mcu;

namespace {

/** Flat 64 KiB test memory. */
struct TestBus : McuBus
{
    std::vector<std::uint8_t> mem = std::vector<std::uint8_t>(0x10000, 0);

    std::uint8_t read(std::uint16_t addr) override { return mem[addr]; }
    void write(std::uint16_t addr, std::uint8_t v) override
    {
        mem[addr] = v;
    }

    void
    load(const Image &image)
    {
        for (const ImageChunk &chunk : image.chunks) {
            std::copy(chunk.bytes.begin(), chunk.bytes.end(),
                      mem.begin() + chunk.base);
        }
    }
};

struct McuTest : ::testing::Test
{
    sim::Simulation simulation;
    TestBus bus;
    Mcu::Config cfg{100e3, 0, 0x0040};
    Mcu cpu{simulation, "cpu", bus, cfg};

    /** Assemble at 0x100, load, reset, and step until HALT/SLEEP. */
    std::uint64_t
    runProgram(const std::string &body, unsigned max_steps = 10'000)
    {
        Image image = assemble(".org 0x0100\n" + body);
        bus.load(image);
        cpu.reset(0x0100);
        cpu.setSp(0x0FFF);
        unsigned steps = 0;
        while (!cpu.halted() && !cpu.sleeping() && steps++ < max_steps)
            cpu.step();
        EXPECT_LT(steps, max_steps) << "program did not terminate";
        return cpu.cycles();
    }
};

} // namespace

// --------------------------------------------------------------------------
// Assembler
// --------------------------------------------------------------------------

TEST(Assembler, EncodesEachFormat)
{
    Image image = assemble(
        ".org 0\n"
        "NOP\n"            // None:    00
        "MOV r1, r2\n"     // RdRs:    11 12
        "LDI r3, 0xAB\n"   // RdImm:   10 30 AB
        "LDS r4, 0x1234\n" // RdAddr:  12 40 12 34
        "STS 0x5678, r5\n" // AddrRs:  13 50 56 78
        "LDX r6, p2\n"     // RdPair:  14 62
        "STX p3, r7\n"     // PairRs:  15 37
        "LDP p1, 0x0102\n" // PairAddr:16 10 01 02
        "PUSH r8\n"        // Rd:      17 80
        "JMP 0x0304\n"     // Addr:    40 03 04
        "MARK 9\n");       // Imm:     07 09
    ASSERT_EQ(image.chunks.size(), 1u);
    const auto &b = image.chunks[0].bytes;
    const std::uint8_t expect[] = {
        0x00, 0x11, 0x12, 0x10, 0x30, 0xAB, 0x12, 0x40, 0x12, 0x34,
        0x13, 0x50, 0x56, 0x78, 0x14, 0x62, 0x15, 0x37, 0x16, 0x10,
        0x01, 0x02, 0x17, 0x80, 0x40, 0x03, 0x04, 0x07, 0x09,
    };
    ASSERT_EQ(b.size(), sizeof(expect));
    for (std::size_t i = 0; i < sizeof(expect); ++i)
        EXPECT_EQ(b[i], expect[i]) << "byte " << i;
}

TEST(Assembler, LabelsAndForwardReferences)
{
    Image image = assemble(
        ".org 0x0200\n"
        "start:\n"
        "    JMP end\n"
        "    NOP\n"
        "end:\n"
        "    HALT\n");
    EXPECT_EQ(image.symbol("start"), 0x0200);
    EXPECT_EQ(image.symbol("end"), 0x0204);
    // JMP operand points at 'end'.
    EXPECT_EQ(image.chunks[0].bytes[1], 0x02);
    EXPECT_EQ(image.chunks[0].bytes[2], 0x04);
}

TEST(Assembler, DirectivesAndExpressions)
{
    Image image = assemble(
        ".equ BASE, 0x1000\n"
        ".equ OFF, 8\n"
        ".org 0x0010\n"
        ".byte 1, 2, BASE-0x0FFF\n"
        ".word BASE+OFF, label\n"
        ".space 3\n"
        "label:\n"
        "    LDI r0, lo(BASE+OFF)\n"
        "    LDI r1, hi(BASE+OFF)\n");
    const auto &b = image.chunks[0].bytes;
    EXPECT_EQ(b[0], 1);
    EXPECT_EQ(b[2], 1);          // BASE-0x0FFF
    EXPECT_EQ(b[3], 0x10);       // .word hi
    EXPECT_EQ(b[4], 0x08);       // .word lo
    EXPECT_EQ(image.symbol("label"), 0x0010 + 3 + 4 + 3);
    EXPECT_EQ(b[10 + 2], 0x08);  // lo()
    EXPECT_EQ(b[13 + 2], 0x10);  // hi()
}

TEST(Assembler, PredefinedSymbols)
{
    std::map<std::string, std::uint16_t> predefined{{"REG", 0x1234}};
    Image image = assemble(".org 0\nLDS r0, REG\n", predefined);
    EXPECT_EQ(image.chunks[0].bytes[2], 0x12);
    EXPECT_EQ(image.chunks[0].bytes[3], 0x34);
}

TEST(Assembler, ErrorsCarryLineNumbers)
{
    EXPECT_THROW(assemble("FROB r1\n"), sim::FatalError);
    EXPECT_THROW(assemble("LDI r99, 1\n"), sim::FatalError);
    EXPECT_THROW(assemble("LDI r0, 300\n"), sim::FatalError);
    EXPECT_THROW(assemble("JMP nowhere\n"), sim::FatalError);
    EXPECT_THROW(assemble("a:\na:\nNOP\n"), sim::FatalError);
    try {
        assemble("NOP\nNOP\nBAD\n");
        FAIL() << "expected fatal";
    } catch (const sim::FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos);
    }
}

TEST(Assembler, MultipleOrgChunks)
{
    Image image = assemble(
        ".org 0x0040\n.word 0, handler\n.org 0x0100\nhandler:\nHALT\n");
    ASSERT_EQ(image.chunks.size(), 2u);
    EXPECT_EQ(image.chunks[0].base, 0x0040);
    EXPECT_EQ(image.chunks[1].base, 0x0100);
    EXPECT_EQ(image.sizeBytes(), 5u);
}

TEST(Disassembler, RoundTripsAllInstructions)
{
    // Assemble a program, then disassemble every instruction and
    // re-assemble the disassembly: the bytes must match.
    const char *source =
        ".org 0\n"
        "ADD r1, r2\nSUBI r3, 0x10\nLSR r4\nCALL 0x0123\nJZ 0x0456\n"
        "INCP p5\nRETI\nSLEEP\nICALL p2\nIJMP p3\nXORI r7, 0x0f\n";
    Image image = assemble(source);
    const auto &bytes = image.chunks[0].bytes;

    std::string rebuilt = ".org 0\n";
    std::size_t offset = 0;
    while (offset < bytes.size()) {
        const InstrInfo *info =
            instrInfo(static_cast<Opcode>(bytes[offset]));
        ASSERT_NE(info, nullptr);
        rebuilt += disassemble(bytes.data() + offset,
                               bytes.size() - offset) +
                   "\n";
        offset += info->lengthBytes;
    }
    Image again = assemble(rebuilt);
    EXPECT_EQ(again.chunks[0].bytes, bytes);
}

// --------------------------------------------------------------------------
// Core semantics
// --------------------------------------------------------------------------

TEST_F(McuTest, ArithmeticFlags)
{
    runProgram(
        "LDI r0, 200\n"
        "LDI r1, 100\n"
        "ADD r0, r1\n" // 300 -> 44 with carry
        "HALT\n");
    EXPECT_EQ(cpu.reg(0), 44);
    EXPECT_TRUE(cpu.flagC());
    EXPECT_FALSE(cpu.flagZ());

    runProgram(
        "LDI r0, 5\n"
        "SUBI r0, 5\n"
        "HALT\n");
    EXPECT_EQ(cpu.reg(0), 0);
    EXPECT_TRUE(cpu.flagZ());
    EXPECT_FALSE(cpu.flagC());

    runProgram(
        "LDI r0, 3\n"
        "SUBI r0, 5\n" // borrow
        "HALT\n");
    EXPECT_EQ(cpu.reg(0), 254);
    EXPECT_TRUE(cpu.flagC());
    EXPECT_TRUE(cpu.flagN());
}

TEST_F(McuTest, AdcSbcPropagateCarry)
{
    // 16-bit add: 0x01FF + 0x0101 = 0x0300.
    runProgram(
        "LDI r0, 0x01\nLDI r1, 0xFF\n" // a = r0:r1
        "LDI r2, 0x01\nLDI r3, 0x01\n" // b = r2:r3
        "ADD r1, r3\n"
        "ADC r0, r2\n"
        "HALT\n");
    EXPECT_EQ(cpu.reg(0), 0x03);
    EXPECT_EQ(cpu.reg(1), 0x00);
}

TEST_F(McuTest, LogicAndShifts)
{
    runProgram(
        "LDI r0, 0xF0\nLDI r1, 0x3C\n"
        "AND r0, r1\n"  // 0x30
        "ORI r0, 0x01\n" // 0x31
        "XORI r0, 0xFF\n" // 0xCE
        "LSL r0\n"       // 0x9C, C=1
        "HALT\n");
    EXPECT_EQ(cpu.reg(0), 0x9C);
    EXPECT_TRUE(cpu.flagC());
    EXPECT_TRUE(cpu.flagN());

    runProgram("LDI r0, 1\nLSR r0\nHALT\n");
    EXPECT_EQ(cpu.reg(0), 0);
    EXPECT_TRUE(cpu.flagC());
    EXPECT_TRUE(cpu.flagZ());
}

TEST_F(McuTest, MemoryAndPointers)
{
    runProgram(
        "LDI r0, 0x77\n"
        "STS 0x0800, r0\n"
        "LDS r1, 0x0800\n"
        "LDP p2, 0x0800\n"
        "LDX r2, p2\n"
        "INCP p2\n"
        "LDI r3, 0x55\n"
        "STX p2, r3\n"
        "LDS r6, 0x0801\n" // r6: pair 2 is r4:r5, keep it intact
        "HALT\n");
    EXPECT_EQ(cpu.reg(1), 0x77);
    EXPECT_EQ(cpu.reg(2), 0x77);
    EXPECT_EQ(cpu.reg(6), 0x55);
    EXPECT_EQ(cpu.pairValue(2), 0x0801);
}

TEST_F(McuTest, PairIncDecWrap)
{
    runProgram(
        "LDP p1, 0x00FF\n"
        "INCP p1\n"
        "HALT\n");
    EXPECT_EQ(cpu.pairValue(1), 0x0100);
    runProgram(
        "LDP p1, 0x0000\n"
        "DECP p1\n"
        "HALT\n");
    EXPECT_EQ(cpu.pairValue(1), 0xFFFF);
}

TEST_F(McuTest, BranchesAndLoops)
{
    // Sum 1..10 with a loop.
    std::uint64_t cycles = runProgram(
        "LDI r0, 0\n"   // sum
        "LDI r1, 10\n"  // i
        "loop:\n"
        "ADD r0, r1\n"
        "DEC r1\n"
        "JNZ loop\n"
        "HALT\n");
    EXPECT_EQ(cpu.reg(0), 55);
    EXPECT_GT(cycles, 30u);
}

TEST_F(McuTest, CallRetAndStack)
{
    runProgram(
        "LDI r0, 1\n"
        "CALL sub\n"
        "LDI r2, 3\n"
        "HALT\n"
        "sub:\n"
        "LDI r1, 2\n"
        "PUSH r0\n"
        "POP r3\n"
        "RET\n");
    EXPECT_EQ(cpu.reg(0), 1);
    EXPECT_EQ(cpu.reg(1), 2);
    EXPECT_EQ(cpu.reg(2), 3);
    EXPECT_EQ(cpu.reg(3), 1);
    EXPECT_EQ(cpu.sp(), 0x0FFF); // balanced
}

TEST_F(McuTest, IndirectCallAndJump)
{
    runProgram(
        "LDP p3, target\n"
        "ICALL p3\n"
        "HALT\n"
        "target:\n"
        "LDI r5, 0x5A\n"
        "RET\n");
    EXPECT_EQ(cpu.reg(5), 0x5A);
}

TEST_F(McuTest, InterruptEntryAndReti)
{
    Image image = assemble(
        ".org 0x0040\n"
        ".word 0, isr\n" // vector 1
        ".org 0x0100\n"
        "main:\n"
        "SEI\n"
        "LDI r0, 1\n"
        "wait:\n"
        "CPI r1, 0x99\n"
        "JNZ wait\n"
        "HALT\n"
        "isr:\n"
        "LDI r1, 0x99\n"
        "RETI\n");
    bus.load(image);
    cpu.reset(0x0100);
    cpu.setSp(0x0FFF);
    cpu.start();

    simulation.runForSeconds(0.001);
    EXPECT_FALSE(cpu.halted()); // spinning
    cpu.raiseIrq(1);
    simulation.runForSeconds(0.01);
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.reg(1), 0x99);
    EXPECT_EQ(cpu.sp(), 0x0FFF); // frame fully popped
    EXPECT_TRUE(cpu.interruptsEnabled());
}

TEST_F(McuTest, SleepWakesOnInterrupt)
{
    Image image = assemble(
        ".org 0x0040\n"
        ".word 0, isr\n"
        ".org 0x0100\n"
        "SEI\n"
        "SLEEP\n"
        "LDI r2, 7\n"
        "HALT\n"
        "isr:\n"
        "LDI r1, 1\n"
        "RETI\n");
    bus.load(image);
    cpu.reset(0x0100);
    cpu.setSp(0x0FFF);
    cpu.start();
    simulation.runForSeconds(0.001);
    EXPECT_TRUE(cpu.sleeping());

    cpu.raiseIrq(1);
    simulation.runForSeconds(0.01);
    EXPECT_TRUE(cpu.halted());
    EXPECT_EQ(cpu.reg(1), 1);
    EXPECT_EQ(cpu.reg(2), 7);
}

TEST_F(McuTest, MarkCallbackIsFree)
{
    std::vector<std::pair<std::uint8_t, std::uint64_t>> marks;
    cpu.setMarkCallback([&](std::uint8_t id, std::uint64_t cycles) {
        marks.push_back({id, cycles});
    });
    runProgram(
        "MARK 1\n"
        "NOP\n"
        "NOP\n"
        "MARK 2\n"
        "HALT\n");
    ASSERT_EQ(marks.size(), 2u);
    EXPECT_EQ(marks[0].first, 1);
    EXPECT_EQ(marks[1].first, 2);
    EXPECT_EQ(marks[1].second - marks[0].second, 2u); // two NOPs only
}

TEST_F(McuTest, FetchCostScalesWithInstructionLength)
{
    // Same program on a bus-fetched core costs lengthBytes extra/instr.
    Image image = assemble(".org 0x0100\nLDS r0, 0x0800\nHALT\n");
    bus.load(image);

    cpu.reset(0x0100);
    cpu.step();
    std::uint64_t harvard = cpu.cycles();

    Mcu::Config serial_cfg{100e3, 1, 0x0040};
    Mcu serial(simulation, "serial", bus, serial_cfg);
    serial.reset(0x0100);
    serial.step();
    EXPECT_EQ(serial.cycles(), harvard + 4); // LDS is 4 bytes
}

TEST_F(McuTest, UndefinedOpcodePanics)
{
    bus.mem[0x0100] = 0xEE;
    cpu.reset(0x0100);
    EXPECT_THROW(cpu.step(), sim::PanicError);
}

TEST_F(McuTest, BadIrqVectorPanics)
{
    EXPECT_THROW(cpu.raiseIrq(32), sim::PanicError);
}

// Parameterized ALU property: compare against a reference model.
struct AluCase
{
    const char *mnemonic;
    std::uint8_t a, b;
};

class AluProperty : public ::testing::TestWithParam<AluCase>
{};

TEST_P(AluProperty, MatchesReference)
{
    const AluCase &c = GetParam();
    sim::Simulation simulation;
    TestBus bus;
    Mcu cpu(simulation, "cpu", bus, Mcu::Config{100e3, 0, 0});

    std::string source = sim::csprintf(
        ".org 0x0100\nLDI r0, %u\nLDI r1, %u\n%s r0, r1\nHALT\n", c.a, c.b,
        c.mnemonic);
    Image image = assemble(source);
    for (const ImageChunk &chunk : image.chunks)
        std::copy(chunk.bytes.begin(), chunk.bytes.end(),
                  bus.mem.begin() + chunk.base);
    cpu.reset(0x0100);
    while (!cpu.halted())
        cpu.step();

    int expected = 0;
    std::string m = c.mnemonic;
    if (m == "ADD")
        expected = c.a + c.b;
    else if (m == "SUB")
        expected = c.a - c.b;
    else if (m == "AND")
        expected = c.a & c.b;
    else if (m == "OR")
        expected = c.a | c.b;
    else if (m == "XOR")
        expected = c.a ^ c.b;
    EXPECT_EQ(cpu.reg(0), static_cast<std::uint8_t>(expected & 0xFF));
    EXPECT_EQ(cpu.flagZ(), static_cast<std::uint8_t>(expected) == 0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AluProperty,
    ::testing::Values(AluCase{"ADD", 0, 0}, AluCase{"ADD", 255, 1},
                      AluCase{"ADD", 127, 127}, AluCase{"SUB", 0, 1},
                      AluCase{"SUB", 200, 200}, AluCase{"SUB", 13, 240},
                      AluCase{"AND", 0xAA, 0x55}, AluCase{"AND", 0xFF, 0x0F},
                      AluCase{"OR", 0xAA, 0x55}, AluCase{"OR", 0, 0},
                      AluCase{"XOR", 0x5A, 0x5A},
                      AluCase{"XOR", 0xF0, 0x0F}));
