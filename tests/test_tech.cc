/**
 * @file
 * Tests of the process-technology study: device-model physics sanity,
 * ring-oscillator behaviour, and the Equation 1 properties behind
 * Figure 3 — including the headline crossover (advanced nodes win at high
 * activity, older nodes at low activity).
 */

#include <gtest/gtest.h>

#include "sim/logging.hh"
#include "tech/eq1_model.hh"

using namespace ulp;
using namespace ulp::tech;

TEST(TechNode, LadderIsOrderedAndComplete)
{
    const auto &nodes = standardNodes();
    ASSERT_EQ(nodes.size(), 6u);
    for (std::size_t i = 1; i < nodes.size(); ++i) {
        // Scaling trends: smaller feature, lower Vdd and Vth, more drive,
        // exponentially more leakage.
        EXPECT_LT(nodes[i].featureNm, nodes[i - 1].featureNm);
        EXPECT_LT(nodes[i].vddNominal, nodes[i - 1].vddNominal);
        EXPECT_LT(nodes[i].vth25, nodes[i - 1].vth25);
        EXPECT_GT(nodes[i].ionNominalUaUm, nodes[i - 1].ionNominalUaUm);
        EXPECT_GT(nodes[i].ioff0NaUm, nodes[i - 1].ioff0NaUm);
    }
    EXPECT_EQ(&findNode("250nm"), &nodes[2]);
    EXPECT_THROW(findNode("45nm"), sim::FatalError);
}

class DeviceModelPerNode : public ::testing::TestWithParam<std::string>
{
  protected:
    const TechNode &node() const { return findNode(GetParam()); }
};

TEST_P(DeviceModelPerNode, IonMatchesNominalCalibration)
{
    DeviceModel device(node());
    double ion = device.ionPerUm(node().vddNominal, 25.0);
    EXPECT_NEAR(ion, node().ionNominalUaUm * 1e-6,
                0.05 * node().ionNominalUaUm * 1e-6);
}

TEST_P(DeviceModelPerNode, IoffMatchesNominalCalibration)
{
    DeviceModel device(node());
    double ioff = device.ioffPerUm(node().vddNominal, 25.0);
    EXPECT_NEAR(ioff, node().ioff0NaUm * 1e-9,
                0.02 * node().ioff0NaUm * 1e-9);
}

TEST_P(DeviceModelPerNode, IonMonotonicInVdd)
{
    DeviceModel device(node());
    double prev = 0.0;
    for (double vdd = 0.1; vdd <= node().vddNominal; vdd += 0.05) {
        double ion = device.ionPerUm(vdd, 25.0);
        EXPECT_GT(ion, prev);
        prev = ion;
    }
}

TEST_P(DeviceModelPerNode, LeakageGrowsWithTemperature)
{
    DeviceModel device(node());
    double cold = device.ioffPerUm(node().vddNominal, 0.0);
    double room = device.ioffPerUm(node().vddNominal, 25.0);
    double hot = device.ioffPerUm(node().vddNominal, 85.0);
    EXPECT_LT(cold, room);
    EXPECT_LT(room, hot);
    // Subthreshold leakage should grow super-linearly (decades per ~80 C).
    EXPECT_GT(hot / room, 5.0);
}

TEST_P(DeviceModelPerNode, DiblRaisesLeakageWithVds)
{
    DeviceModel device(node());
    double low = device.ioffPerUm(0.3, 25.0);
    double high = device.ioffPerUm(node().vddNominal, 25.0);
    EXPECT_LT(low, high);
}

TEST_P(DeviceModelPerNode, OscillatorSlowsAsVddDrops)
{
    RingOscillator osc(node());
    double prev_period = 0.0;
    for (double vdd = node().vddNominal; vdd >= 0.15; vdd -= 0.05) {
        OscillatorPoint p = osc.evaluate(vdd, 25.0);
        EXPECT_GT(p.periodSeconds, prev_period);
        EXPECT_GT(p.activeWatts, 0.0);
        EXPECT_GE(p.activeWatts, p.leakageWatts); // active includes leak
        prev_period = p.periodSeconds;
    }
}

INSTANTIATE_TEST_SUITE_P(AllNodes, DeviceModelPerNode,
                         ::testing::Values("600nm", "350nm", "250nm",
                                           "180nm", "130nm", "90nm"));

TEST(DeviceModel, VthTemperatureSlope)
{
    DeviceModel device(findNode("250nm"));
    EXPECT_NEAR(device.vth(25.0), 0.55, 1e-9);
    EXPECT_NEAR(device.vth(85.0), 0.55 - 1.2e-3 * 60.0, 1e-6);
}

TEST(DeviceModel, SubthresholdSlopeScalesWithT)
{
    DeviceModel device(findNode("250nm"));
    double s25 = device.subthresholdSlope(25.0);
    double s85 = device.subthresholdSlope(85.0);
    EXPECT_NEAR(s85 / s25, (85 + 273.15) / (25 + 273.15), 1e-6);
}

// --------------------------------------------------------------------------
// Equation 1
// --------------------------------------------------------------------------

TEST(Eq1, MinFeasibleVddMeetsTtarget)
{
    Eq1Model eq1;
    for (const TechNode &node : standardNodes()) {
        RingOscillator osc(node);
        auto vdd = eq1.minFeasibleVdd(osc, 25.0);
        ASSERT_TRUE(vdd.has_value()) << node.name;
        OscillatorPoint at = osc.evaluate(*vdd, 25.0);
        EXPECT_LE(at.periodSeconds, eq1.ttargetSeconds());
        // One step lower must miss the target (unless at the search floor).
        if (*vdd > 0.1 + 1e-9) {
            OscillatorPoint below = osc.evaluate(*vdd - 0.005, 25.0);
            EXPECT_GT(below.periodSeconds, eq1.ttargetSeconds());
        }
    }
}

TEST(Eq1, WeightInterpolatesActiveAndLeakage)
{
    Eq1Model eq1;
    OscillatorPoint point{1.0, 25.0, eq1.ttargetSeconds(), 10e-9, 1e-9};
    // T == Ttarget, alpha 1: pure active.
    EXPECT_DOUBLE_EQ(eq1.totalPower(1.0, point), 10e-9);
    // alpha 0: pure leakage.
    EXPECT_DOUBLE_EQ(eq1.totalPower(0.0, point), 1e-9);
    // Midpoint.
    EXPECT_DOUBLE_EQ(eq1.totalPower(0.5, point), 5.5e-9);
    // Weight clamps even for absurd alpha.
    EXPECT_DOUBLE_EQ(eq1.totalPower(50.0, point), 10e-9);
}

TEST(Eq1, TotalPowerMonotonicInAlpha)
{
    Eq1Model eq1;
    RingOscillator osc(findNode("250nm"));
    auto vdd = eq1.minFeasibleVdd(osc, 25.0);
    ASSERT_TRUE(vdd);
    OscillatorPoint point = osc.evaluate(*vdd, 25.0);
    double prev = 0.0;
    for (double alpha : {1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0}) {
        double watts = eq1.totalPower(alpha, point);
        EXPECT_GE(watts, prev);
        prev = watts;
    }
}

TEST(Eq1, Figure3CrossoverHolds)
{
    // The §5.1 claim: deep-submicron wins at high activity, older
    // technology wins at sensor-network activity factors.
    auto samples = sweepTechnologies({1.0, 1e-4});

    auto watts = [&](const std::string &node, double alpha) {
        for (const auto &s : samples) {
            if (s.node == node && s.alpha == alpha)
                return s.totalWatts;
        }
        ADD_FAILURE() << "missing sample " << node << "@" << alpha;
        return 0.0;
    };

    // At alpha = 1 the older half of the ladder is strictly worse than
    // the newer half's best.
    double newer_best_hi = std::min({watts("180nm", 1.0),
                                     watts("130nm", 1.0),
                                     watts("90nm", 1.0)});
    EXPECT_LT(newer_best_hi, watts("600nm", 1.0));
    EXPECT_LT(newer_best_hi, watts("350nm", 1.0));

    // At alpha = 1e-4 the ordering flips: old beats deep submicron.
    double older_best_lo = std::min({watts("600nm", 1e-4),
                                     watts("350nm", 1e-4),
                                     watts("250nm", 1e-4)});
    EXPECT_LT(older_best_lo, watts("130nm", 1e-4));
    EXPECT_LT(older_best_lo, watts("90nm", 1e-4));

    // And the most advanced node is never the low-activity winner.
    EXPECT_GT(watts("90nm", 1e-4), 10.0 * older_best_lo);
}

TEST(Eq1, HotterMeansLeakier)
{
    Eq1Model eq1;
    RingOscillator osc(findNode("130nm"));
    auto vdd25 = eq1.minFeasibleVdd(osc, 25.0);
    auto vdd85 = eq1.minFeasibleVdd(osc, 85.0);
    ASSERT_TRUE(vdd25 && vdd85);
    double cold = eq1.totalPower(1e-4, osc.evaluate(*vdd25, 25.0));
    double hot = eq1.totalPower(1e-4, osc.evaluate(*vdd85, 85.0));
    EXPECT_GT(hot, cold);
}
