/**
 * @file
 * Reliability tests: MAC-layer acknowledged transmission under seeded
 * Gilbert-Elliott bursty loss, watchdog recovery of a wedged
 * microcontroller, and the fault-injection campaign driver.
 *
 * The headline experiment reproduces the ISSUE acceptance criterion:
 * with the channel cycling through deep fades, delivery ratio with
 * ACK + 3 retries must be strictly higher than fire-and-forget.
 */

#include <gtest/gtest.h>

#include <set>

#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "fault/fault_injector.hh"
#include "net/channel.hh"
#include "sim/logging.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

namespace {

/**
 * A base-station endpoint attached straight to the channel: it counts
 * unique data frames arriving intact for its address and (optionally)
 * acknowledges them after the 802.15.4 RX/TX turnaround, so a MAC
 * sender one hop away sees a realistic ACK path (the ACK itself flies
 * through the lossy channel).
 */
struct AckSink : sim::SimObject, net::Transceiver
{
    AckSink(sim::Simulation &simulation, const std::string &name,
            net::Channel &channel, std::uint16_t address, bool acking)
        : sim::SimObject(simulation, name), channel(channel),
          address(address), acking(acking),
          ackEvent([this] { sendAck(); }, name + ".ackEvent")
    {
        channel.attach(this);
    }

    ~AckSink() override { channel.detach(this); }

    void
    frameArrived(const net::Frame &frame, bool corrupted) override
    {
        if (corrupted || frame.type != net::Frame::Type::Data ||
            frame.dest != address) {
            return;
        }
        delivered.insert({frame.src, frame.seq});
        if (acking && !ackEvent.scheduled()) {
            pendingAck = net::Frame{};
            pendingAck.type = net::Frame::Type::Ack;
            pendingAck.seq = frame.seq;
            pendingAck.src = address;
            pendingAck.dest = frame.src;
            pendingAck.destPan = frame.destPan;
            scheduleRel(&ackEvent, RadioDevice::turnaroundTicks);
        }
    }

    void sendAck() { channel.transmit(this, pendingAck); }

    net::Channel &channel;
    std::uint16_t address;
    bool acking;
    net::Frame pendingAck;
    sim::EventFunctionWrapper ackEvent;
    /** Unique (src, seq) pairs delivered intact. */
    std::set<std::pair<std::uint16_t, std::uint8_t>> delivered;
};

struct ExperimentResult
{
    std::uint64_t prepared = 0;  ///< frames the sender staged for TX
    std::uint64_t delivered = 0; ///< unique frames that reached the sink
    std::uint64_t retransmissions = 0;
    std::uint64_t acksReceived = 0;
    std::uint64_t txFailures = 0;
    std::uint64_t forwarded = 0;

    double
    ratio() const
    {
        return prepared ? static_cast<double>(delivered) / prepared : 0.0;
    }
};

/**
 * Two-hop topology under bursty loss: sender (app1, 10 Hz samples,
 * destination = base station) and forwarder (app3) share a channel with
 * the base-station sink. The Gilbert-Elliott chain spends ~80 % of
 * frames in the Good state and loses 95 % of frames in the Bad state,
 * so bursts eat consecutive attempts unless the MAC retries through
 * them.
 */
ExperimentResult
runDeliveryExperiment(std::uint8_t mac_retries)
{
    constexpr std::uint16_t sinkAddr = 0x0000;

    sim::Simulation simulation;
    net::Channel channel(simulation, "channel", net::Channel::defaultBitRate,
                         /*seed=*/42);
    channel.setGilbertElliott({0.08, 0.35, 0.0, 0.95});

    NodeConfig sender_cfg;
    sender_cfg.address = 0x0010;
    sender_cfg.sensorSignal = [](sim::Tick) { return 42; };
    SensorNode sender(simulation, "sender", sender_cfg, &channel);

    NodeConfig fwd_cfg;
    fwd_cfg.address = 0x0011;
    fwd_cfg.sensorSignal = [](sim::Tick) { return 0; };
    SensorNode forwarder(simulation, "forwarder", fwd_cfg, &channel);

    // The sink is passive (it only counts): the forwarder's auto-ACK
    // covers the sender's hop, and a second acknowledger for the same
    // frame would deterministically collide with it on the air.
    AckSink sink(simulation, "sink", channel, sinkAddr, /*acking=*/false);

    apps::AppParams sender_params;
    sender_params.samplePeriodCycles = 10'000; // 10 Hz
    sender_params.dest = sinkAddr;
    sender_params.macRetries = mac_retries;
    apps::install(sender, apps::buildApp1(sender_params));

    apps::AppParams fwd_params;
    fwd_params.samplePeriodCycles = 0xFFFF; // sampling is not the point
    fwd_params.threshold = 255;             // and nothing passes anyway
    fwd_params.dest = sinkAddr;
    fwd_params.macRetries = mac_retries;
    apps::install(forwarder, apps::buildApp3(fwd_params));

    simulation.runForSeconds(10.0);

    ExperimentResult r;
    r.prepared = sender.msgProc().framesPrepared();
    r.delivered = sink.delivered.size();
    r.retransmissions = sender.radio().retransmissions() +
                        forwarder.radio().retransmissions();
    r.acksReceived = sender.radio().acksReceived() +
                     forwarder.radio().acksReceived();
    r.txFailures = sender.radio().txFailures() +
                   forwarder.radio().txFailures();
    r.forwarded = forwarder.msgProc().forwarded();
    return r;
}

} // namespace

// --------------------------------------------------------------------------
// Acceptance: ACK + retransmit beats fire-and-forget under bursty loss.
// --------------------------------------------------------------------------

TEST(Reliability, RetransmissionsRaiseDeliveryRatioUnderBurstyLoss)
{
    ExperimentResult legacy = runDeliveryExperiment(0);
    ExperimentResult mac = runDeliveryExperiment(3);

    // Both runs staged the same periodic traffic.
    EXPECT_GE(legacy.prepared, 95u);
    EXPECT_EQ(legacy.prepared, mac.prepared);

    // The multi-hop path was really exercised.
    EXPECT_GT(legacy.forwarded, 0u);
    EXPECT_GT(mac.forwarded, 0u);

    // Fire-and-forget loses every frame a fade touches; the MAC retried
    // its way through the bursts.
    EXPECT_GT(mac.delivered, legacy.delivered);
    EXPECT_GT(mac.ratio(), legacy.ratio());
    EXPECT_GT(mac.retransmissions, 0u);
    EXPECT_GT(mac.acksReceived, 0u);

    // Legacy radios know nothing of ACKs or retries.
    EXPECT_EQ(legacy.retransmissions, 0u);
    EXPECT_EQ(legacy.acksReceived, 0u);

    // With a retry budget of 3 the residual loss should be small: the
    // chain leaves the Bad state with p = 0.35 per frame, so four
    // attempts rarely all land in a fade.
    EXPECT_GT(mac.ratio(), 0.85);
    EXPECT_LT(legacy.ratio(), mac.ratio() - 0.05);
}

TEST(Reliability, CleanChannelNeedsNoRetransmissions)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel");

    NodeConfig cfg;
    cfg.address = 0x0010;
    cfg.sensorSignal = [](sim::Tick) { return 42; };
    SensorNode sender(simulation, "sender", cfg, &channel);
    AckSink sink(simulation, "sink", channel, 0x0000, true);

    apps::AppParams params;
    params.samplePeriodCycles = 10'000;
    params.dest = 0x0000;
    params.macRetries = 3;
    apps::install(sender, apps::buildApp1(params));

    simulation.runForSeconds(2.0);

    EXPECT_GE(sender.radio().framesSent(), 18u);
    EXPECT_EQ(sender.radio().retransmissions(), 0u);
    EXPECT_EQ(sender.radio().txFailures(), 0u);
    EXPECT_EQ(sender.radio().acksReceived(), sender.radio().framesSent());
    EXPECT_EQ(sink.delivered.size(), sender.msgProc().framesPrepared());
}

TEST(Reliability, RetryBudgetExhaustionPostsTxFail)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel");
    channel.setLossProbability(1.0); // nothing ever gets through

    NodeConfig cfg;
    cfg.address = 0x0010;
    cfg.sensorSignal = [](sim::Tick) { return 42; };
    SensorNode sender(simulation, "sender", cfg, &channel);

    apps::AppParams params;
    params.samplePeriodCycles = 10'000;
    params.dest = 0x0000;
    params.macRetries = 3;
    apps::install(sender, apps::buildApp1(params));

    simulation.runForSeconds(1.0);

    // Every transaction burned its full retry budget and failed; the
    // RadioTxFail interrupt let the EP gate the radio again, so the
    // pipeline kept running instead of deadlocking on the first loss.
    EXPECT_EQ(sender.radio().framesSent(), 0u);
    EXPECT_GE(sender.radio().txFailures(), 8u);
    EXPECT_EQ(sender.radio().retransmissions(),
              3 * sender.radio().txFailures());
    EXPECT_GE(sender.msgProc().framesPrepared(), 9u);
}

// --------------------------------------------------------------------------
// Watchdog: a wedged microcontroller is force-reset and the node recovers.
// --------------------------------------------------------------------------

TEST(Reliability, WatchdogRecoversWedgedMicrocontroller)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 0; };
    SensorNode node(simulation, "node", cfg);
    node.probes().setKeepHistory(true);

    // Hand-built image: init programs the watchdog load (20 units =
    // 5120 cycles = 51.2 ms) but leaves it disarmed; the hang handler
    // arms it and spins forever, holding the bus; the recovery handler
    // (wakeup vector 7, entered after the bark) disarms it and sleeps.
    std::string ep_src = R"(
watchdog_isr:
    WAKEUP 7
.isr Watchdog, watchdog_isr
)";
    std::string mcu_src = sim::csprintf(".org %u\n", unsigned{map::mcuCodeBase}) +
                          R"(
init:
    LDI r0, 0
    STS WDT_LOADHI, r0
    LDI r0, 20
    STS WDT_LOADLO, r0
    SLEEP
hang:
    LDI r0, 1
    STS WDT_CTRL, r0
spin:
    JMP spin
recovered:
    LDI r0, 0
    STS WDT_CTRL, r0
    SLEEP
)";

    apps::NodeApp app;
    app.name = "wedge-recovery";
    app.ep = epAssemble(ep_src);
    app.mcu = mcu::assemble(mcu_src, epDefaultSymbols());
    app.initEntry = app.mcu.symbol("init");
    app.vectors[7] = app.mcu.symbol("recovered");
    apps::install(node, app);

    simulation.runForSeconds(0.01);
    ASSERT_FALSE(node.micro().awake());

    // Wedge: wake the core straight into the spin loop.
    sim::Tick hung_at = simulation.curTick();
    node.micro().wake(app.mcu.symbol("hang"));
    simulation.runForSeconds(0.5);

    // The watchdog barked exactly once, the core was force-reset, and
    // the recovery handler ran and disarmed the watchdog.
    EXPECT_EQ(node.timers().watchdogBarks(), 1u);
    EXPECT_EQ(node.micro().forcedResets(), 1u);
    EXPECT_FALSE(node.micro().awake());
    EXPECT_FALSE(node.timers().watchdogEnabled());
    EXPECT_EQ(node.probes().count(Probe::WatchdogBark), 1u);
    EXPECT_EQ(node.probes().count(Probe::McuForcedReset), 1u);

    // Recovery latency: the bark fires one full countdown (51.2 ms)
    // after the hung handler armed the watchdog.
    sim::Tick bark = node.probes().last(Probe::WatchdogBark);
    ASSERT_NE(bark, sim::maxTick);
    double latency = static_cast<double>(bark - hung_at) / 1e9;
    EXPECT_GT(latency, 0.050);
    EXPECT_LT(latency, 0.060);
}

TEST(Reliability, KickedWatchdogNeverBarks)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 42; };
    SensorNode node(simulation, "node", cfg);

    // app1 with the watchdog armed: init programs a ~128 ms timeout and
    // the 10 ms timer ISR kicks it, so it never expires.
    apps::AppParams params;
    params.samplePeriodCycles = 1000;
    params.watchdogCycles = 12'800;
    apps::install(node, apps::buildApp1(params));

    simulation.runForSeconds(2.0);

    EXPECT_TRUE(node.timers().watchdogEnabled());
    EXPECT_GE(node.timers().watchdogKicks(), 190u);
    EXPECT_EQ(node.timers().watchdogBarks(), 0u);
    EXPECT_EQ(node.micro().forcedResets(), 0u);
    EXPECT_GE(node.radio().framesSent(), 190u);
}

// --------------------------------------------------------------------------
// Fault-injection campaigns
// --------------------------------------------------------------------------

TEST(FaultInjector, ParsesTextPlans)
{
    fault::CampaignPlan plan = fault::parsePlan(R"(
# a comment
0.0   channel-ge        0.02 0.4 0.0 0.9   ; pGB pBG lossG lossB
4.0   channel-ge-off
2.0   channel-loss      0.1
1.5   sram-flip         0x0210 3
1.6   sram-random-flip  4
1.0   wedge             msgProc 0.5
2.0   unwedge           msgProc
2.5   slowdown          msgProc 3.0
3.0   droop             0.002
)");

    ASSERT_EQ(plan.actions.size(), 9u);
    using Kind = fault::Action::Kind;
    EXPECT_EQ(plan.actions[0].kind, Kind::ChannelGe);
    EXPECT_DOUBLE_EQ(plan.actions[0].b, 0.4);
    EXPECT_EQ(plan.actions[3].kind, Kind::SramFlip);
    EXPECT_DOUBLE_EQ(plan.actions[3].a, 0x0210);
    EXPECT_EQ(plan.actions[5].kind, Kind::Wedge);
    EXPECT_EQ(plan.actions[5].target, "msgProc");
    EXPECT_DOUBLE_EQ(plan.actions[8].a, 0.002);
}

TEST(FaultInjector, RejectsMalformedPlans)
{
    EXPECT_THROW(fault::parsePlan("0.0 frobnicate 1"), sim::FatalError);
    EXPECT_THROW(fault::parsePlan("0.0 channel-loss"), sim::FatalError);
    EXPECT_THROW(fault::parsePlan("0.0 wedge"), sim::FatalError);
    EXPECT_THROW(fault::parsePlan("oops channel-loss 0.1"),
                 sim::FatalError);
}

TEST(FaultInjector, CampaignActionsLandOnSchedule)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel");

    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 42; };
    SensorNode node(simulation, "node", cfg, &channel);

    fault::FaultInjector injector(simulation, "injector");
    injector.attachChannel(&channel);
    injector.attachSram(&node.memory());
    injector.attachDevice("msgProc", &node.msgProc());

    injector.runText(R"(
0.1  channel-ge   0.05 0.5 0.0 1.0
0.2  sram-flip    0x0410 0
0.3  wedge        msgProc 0.1
0.6  slowdown     msgProc 2.0
0.7  channel-ge-off
)");

    simulation.runForSeconds(0.05);
    EXPECT_FALSE(channel.gilbertElliottEnabled());
    EXPECT_FALSE(node.msgProc().busWedged());

    simulation.runForSeconds(0.2); // t = 0.25
    EXPECT_TRUE(channel.gilbertElliottEnabled());
    EXPECT_EQ(node.memory().bitFlips(), 1u);

    simulation.runForSeconds(0.1); // t = 0.35: inside the wedge window
    EXPECT_TRUE(node.msgProc().busWedged());

    simulation.runForSeconds(0.15); // t = 0.5: wedge expired
    EXPECT_FALSE(node.msgProc().busWedged());

    simulation.runForSeconds(0.3); // t = 0.8
    EXPECT_FALSE(channel.gilbertElliottEnabled());
    EXPECT_DOUBLE_EQ(node.msgProc().faultSlowdown(), 2.0);

    EXPECT_EQ(injector.injectedChannelFaults(), 2u);
    EXPECT_EQ(injector.injectedBitFlips(), 1u);
    EXPECT_EQ(injector.injectedDeviceFaults(), 2u);
}

TEST(FaultInjector, UnattachedTargetIsFatal)
{
    sim::Simulation simulation;
    fault::FaultInjector injector(simulation, "injector");
    injector.runText("0.0 droop 0.001"); // no supply attached
    EXPECT_THROW(simulation.runForSeconds(0.1), sim::FatalError);
}

TEST(FaultInjector, BitFlipCorruptsStoredData)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 0; };
    SensorNode node(simulation, "node", cfg);

    node.memory().poke(0x0410, 0b0001'0000);
    fault::FaultInjector injector(simulation, "injector");
    injector.attachSram(&node.memory());
    injector.runText("0.01 sram-flip 0x0410 4");
    simulation.runForSeconds(0.05);

    EXPECT_EQ(node.memory().peek(0x0410), 0);
    EXPECT_EQ(node.memory().bitFlips(), 1u);
}

TEST(FaultInjector, SeededCampaignsReplayIdentically)
{
    auto run = [](std::uint64_t seed) {
        sim::Simulation simulation;
        NodeConfig cfg;
        cfg.sensorSignal = [](sim::Tick) { return 0; };
        SensorNode node(simulation, "node", cfg);

        fault::FaultInjector injector(simulation, "injector", seed);
        injector.attachSram(&node.memory());
        injector.runText("0.01 sram-random-flip 16");
        simulation.runForSeconds(0.05);

        std::vector<std::uint8_t> image;
        for (unsigned a = 0x0400; a < 0x0800; ++a)
            image.push_back(node.memory().peek(
                static_cast<std::uint16_t>(a)));
        return image;
    };

    auto a = run(7);
    auto b = run(7);
    auto c = run(8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

TEST(FaultInjector, WedgedDeviceFloatsTheBus)
{
    sim::Simulation simulation;
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick) { return 42; };
    SensorNode node(simulation, "node", cfg);

    node.dataBus().write(map::filterBase + map::filterThresh, 99);
    EXPECT_EQ(node.dataBus().read(map::filterBase + map::filterThresh), 99);

    node.filter().injectWedge(); // latched
    EXPECT_EQ(node.dataBus().read(map::filterBase + map::filterThresh),
              0xFF);
    node.dataBus().write(map::filterBase + map::filterThresh, 11);
    EXPECT_EQ(node.dataBus().wedgedAccesses(), 2u);

    node.filter().clearWedge();
    EXPECT_EQ(node.dataBus().read(map::filterBase + map::filterThresh), 99);
    EXPECT_EQ(node.filter().threshold(), 99);
}
