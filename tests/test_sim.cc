/**
 * @file
 * Unit tests for the simulation kernel: event queue ordering and
 * lifecycle, clock domains, the statistics package, logging, tracing,
 * and deterministic randomness.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "sim/clock.hh"
#include "sim/event_queue.hh"
#include "sim/logging.hh"
#include "sim/random.hh"
#include "sim/simulation.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

using namespace ulp::sim;

// --------------------------------------------------------------------------
// EventQueue
// --------------------------------------------------------------------------

TEST(EventQueue, ProcessesInTimeOrder)
{
    EventQueue queue;
    std::vector<int> order;
    EventFunctionWrapper a([&] { order.push_back(1); }, "a");
    EventFunctionWrapper b([&] { order.push_back(2); }, "b");
    EventFunctionWrapper c([&] { order.push_back(3); }, "c");

    queue.schedule(&c, 300);
    queue.schedule(&a, 100);
    queue.schedule(&b, 200);

    queue.runUntil(1000);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(queue.curTick(), 1000u);
    EXPECT_TRUE(queue.empty());
}

TEST(EventQueue, SameTickUsesPriorityThenFifo)
{
    EventQueue queue;
    std::vector<int> order;
    EventFunctionWrapper first([&] { order.push_back(1); }, "first");
    EventFunctionWrapper second([&] { order.push_back(2); }, "second");
    EventFunctionWrapper urgent([&] { order.push_back(0); }, "urgent",
                                Event::interruptPriority);

    queue.schedule(&first, 50);
    queue.schedule(&second, 50);
    queue.schedule(&urgent, 50);

    queue.runUntil(50);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, DescheduleRemovesEvent)
{
    EventQueue queue;
    bool ran = false;
    EventFunctionWrapper event([&] { ran = true; }, "e");
    queue.schedule(&event, 10);
    EXPECT_TRUE(event.scheduled());
    queue.deschedule(&event);
    EXPECT_FALSE(event.scheduled());
    queue.runUntil(100);
    EXPECT_FALSE(ran);
}

TEST(EventQueue, RescheduleMovesEvent)
{
    EventQueue queue;
    int runs = 0;
    EventFunctionWrapper event([&] { ++runs; }, "e");
    queue.schedule(&event, 10);
    queue.reschedule(&event, 500);
    queue.runUntil(100);
    EXPECT_EQ(runs, 0);
    queue.runUntil(500);
    EXPECT_EQ(runs, 1);
}

TEST(EventQueue, SchedulingIntoThePastPanics)
{
    EventQueue queue;
    EventFunctionWrapper event([] {}, "e");
    queue.runUntil(100);
    EXPECT_THROW(queue.schedule(&event, 50), PanicError);
}

TEST(EventQueue, DoubleSchedulePanics)
{
    EventQueue queue;
    EventFunctionWrapper event([] {}, "e");
    queue.schedule(&event, 10);
    EXPECT_THROW(queue.schedule(&event, 20), PanicError);
}

TEST(EventQueue, EventsCanScheduleEvents)
{
    EventQueue queue;
    int chain = 0;
    EventFunctionWrapper second([&] { chain = 2; }, "second");
    EventFunctionWrapper first(
        [&] {
            chain = 1;
            queue.schedule(&second, queue.curTick() + 5);
        },
        "first");
    queue.schedule(&first, 10);
    queue.runUntil(14);
    EXPECT_EQ(chain, 1);
    queue.runUntil(15);
    EXPECT_EQ(chain, 2);
}

TEST(EventQueue, DestructorDeschedules)
{
    EventQueue queue;
    {
        EventFunctionWrapper event([] {}, "scoped");
        queue.schedule(&event, 10);
    }
    EXPECT_TRUE(queue.empty());
    queue.runUntil(100); // must not touch the dead event
}

TEST(EventQueue, NextTickReportsHead)
{
    EventQueue queue;
    EXPECT_EQ(queue.nextTick(), maxTick);
    EventFunctionWrapper event([] {}, "e");
    queue.schedule(&event, 42);
    EXPECT_EQ(queue.nextTick(), 42u);
}

// --------------------------------------------------------------------------
// ClockDomain
// --------------------------------------------------------------------------

TEST(ClockDomain, PaperClockIs10usPeriod)
{
    ClockDomain clock(100e3);
    EXPECT_EQ(clock.period(), 10'000u);
    EXPECT_EQ(clock.cyclesToTicks(127), 1'270'000u);
    EXPECT_EQ(clock.ticksToCycles(25'000), 2u);
}

TEST(ClockDomain, NextEdgeAligns)
{
    ClockDomain clock(100e3);
    EXPECT_EQ(clock.nextEdge(0), 0u);
    EXPECT_EQ(clock.nextEdge(1), 10'000u);
    EXPECT_EQ(clock.nextEdge(10'000), 10'000u);
    EXPECT_EQ(clock.nextEdge(10'001), 20'000u);
    EXPECT_EQ(clock.clockEdge(10'001, 3), 50'000u);
}

TEST(ClockDomain, RejectsBadFrequencies)
{
    EXPECT_THROW(ClockDomain(-5.0), FatalError);
    EXPECT_THROW(ClockDomain(0.0), FatalError);
    EXPECT_THROW(ClockDomain(3e9), FatalError); // beyond tick resolution
}

class ClockEdgeProperty : public ::testing::TestWithParam<double>
{};

TEST_P(ClockEdgeProperty, EdgesAreConsistent)
{
    ClockDomain clock(GetParam());
    for (Tick t : {Tick{0}, Tick{1}, Tick{999}, Tick{123456},
                   Tick{99999999}}) {
        Tick edge = clock.nextEdge(t);
        EXPECT_GE(edge, t);
        EXPECT_LT(edge - t, clock.period());
        EXPECT_EQ(edge % clock.period(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Frequencies, ClockEdgeProperty,
                         ::testing::Values(32.768e3, 100e3, 7.3728e6,
                                           1e6, 250e3));

// --------------------------------------------------------------------------
// Statistics
// --------------------------------------------------------------------------

TEST(Stats, ScalarAccumulates)
{
    stats::Group group(nullptr, "g");
    stats::Scalar counter(&group, "counter", "a counter");
    ++counter;
    counter += 4.0;
    EXPECT_DOUBLE_EQ(counter.value(), 5.0);
    counter.reset();
    EXPECT_DOUBLE_EQ(counter.value(), 0.0);
}

TEST(Stats, FormulaEvaluatesLazily)
{
    stats::Group group(nullptr, "g");
    stats::Scalar a(&group, "a", "");
    stats::Formula ratio(&group, "ratio", "", [&] { return a.value() / 2; });
    a += 10.0;
    EXPECT_DOUBLE_EQ(ratio.value(), 5.0);
    a += 10.0;
    EXPECT_DOUBLE_EQ(ratio.value(), 10.0);
}

TEST(Stats, DistributionMoments)
{
    stats::Group group(nullptr, "g");
    stats::Distribution dist(&group, "d", "");
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        dist.sample(v);
    EXPECT_EQ(dist.count(), 8u);
    EXPECT_DOUBLE_EQ(dist.mean(), 5.0);
    EXPECT_DOUBLE_EQ(dist.min(), 2.0);
    EXPECT_DOUBLE_EQ(dist.max(), 9.0);
    EXPECT_NEAR(dist.stddev(), 2.138, 1e-3);
}

TEST(Stats, GroupTreePrintsHierarchicalNames)
{
    stats::Group root(nullptr, "root");
    stats::Group child(&root, "child");
    stats::Scalar leaf(&child, "leaf", "desc");
    leaf += 3.0;

    std::ostringstream os;
    root.printStats(os);
    EXPECT_NE(os.str().find("root.child.leaf"), std::string::npos);
    EXPECT_NE(os.str().find("desc"), std::string::npos);

    root.resetStats();
    EXPECT_DOUBLE_EQ(leaf.value(), 0.0);
}

TEST(Stats, FindStatByName)
{
    stats::Group group(nullptr, "g");
    stats::Scalar a(&group, "alpha", "");
    EXPECT_EQ(group.findStat("alpha"), &a);
    EXPECT_EQ(group.findStat("beta"), nullptr);
}

// --------------------------------------------------------------------------
// Logging / tracing / random
// --------------------------------------------------------------------------

TEST(Logging, PanicAndFatalThrowDistinctTypes)
{
    EXPECT_THROW(panic("boom %d", 42), PanicError);
    EXPECT_THROW(fatal("bad config %s", "x"), FatalError);
    try {
        fatal("value was %d", 7);
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("value was 7"),
                  std::string::npos);
    }
}

TEST(Logging, CsprintfFormats)
{
    EXPECT_EQ(csprintf("%s-%04x", "ab", 0xBEEF), "ab-beef");
    EXPECT_EQ(csprintf("plain"), "plain");
}

TEST(Trace, EnableDisable)
{
    Trace::clear();
    EXPECT_FALSE(Trace::enabled("EP"));
    Trace::enable("EP");
    EXPECT_TRUE(Trace::enabled("EP"));
    EXPECT_FALSE(Trace::enabled("Bus"));
    Trace::enable("All");
    EXPECT_TRUE(Trace::enabled("Bus"));
    Trace::clear();
    EXPECT_FALSE(Trace::anyEnabled());
}

TEST(Trace, EnableFromCommaList)
{
    Trace::clear();
    Trace::enableFromString("EP,Bus,,Timer");
    EXPECT_TRUE(Trace::enabled("EP"));
    EXPECT_TRUE(Trace::enabled("Bus"));
    EXPECT_TRUE(Trace::enabled("Timer"));
    EXPECT_FALSE(Trace::enabled("Radio"));
    Trace::clear();
}

TEST(Random, DeterministicPerSeed)
{
    Random a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) {
        std::uint64_t va = a.uniformInt(0, 1'000'000);
        EXPECT_EQ(va, b.uniformInt(0, 1'000'000));
    }
    bool any_diff = false;
    Random a2(42);
    for (int i = 0; i < 100; ++i)
        any_diff |= a2.uniformInt(0, 1'000'000) != c.uniformInt(0, 1'000'000);
    EXPECT_TRUE(any_diff);
}

TEST(Random, ChanceRespectsProbability)
{
    Random rng(7);
    int hits = 0;
    for (int i = 0; i < 10'000; ++i)
        hits += rng.chance(0.25) ? 1 : 0;
    EXPECT_NEAR(hits, 2'500, 200);
    EXPECT_FALSE(rng.chance(0.0));
}

TEST(Simulation, RunHelpers)
{
    Simulation simulation;
    int runs = 0;
    EventFunctionWrapper event([&] { ++runs; }, "e");
    simulation.eventq().schedule(&event, secondsToTicks(0.5));
    simulation.runForSeconds(0.25);
    EXPECT_EQ(runs, 0);
    simulation.runForSeconds(0.25);
    EXPECT_EQ(runs, 1);
    EXPECT_EQ(simulation.curTick(), secondsToTicks(0.5));
}
