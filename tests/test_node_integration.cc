/**
 * @file
 * End-to-end integration tests: the four staged applications of §6.1.2
 * running on the full SensorNode, checked against the paper's described
 * behaviour (packets sent, filtering, forwarding, duplicate suppression,
 * reconfiguration via the microcontroller).
 */

#include <gtest/gtest.h>

#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "net/channel.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

namespace {

NodeConfig
testConfig(std::uint8_t sensor_value = 100)
{
    NodeConfig cfg;
    cfg.sensorSignal = [sensor_value](sim::Tick) { return sensor_value; };
    return cfg;
}

} // namespace

TEST(NodeIntegration, App1SendsPeriodicPackets)
{
    sim::Simulation simulation;
    SensorNode node(simulation, "node", testConfig(42));

    apps::AppParams params;
    params.samplePeriodCycles = 1000; // 100 Hz at 100 kHz
    apps::install(node, apps::buildApp1(params));

    simulation.runForSeconds(1.0);

    // 100 Hz for one second: ~100 packets (first alarm after one period).
    EXPECT_GE(node.radio().framesSent(), 98u);
    EXPECT_LE(node.radio().framesSent(), 101u);

    // The transmitted frame carries the sample.
    const net::Frame &frame = node.radio().lastTxFrame();
    ASSERT_EQ(frame.payload.size(), 1u);
    EXPECT_EQ(frame.payload[0], 42);
    EXPECT_EQ(frame.src, node.config().address);
    EXPECT_EQ(frame.sizeBytes(), apps::sampleFrameBytes);

    // The microcontroller ran init exactly once and went back to sleep.
    EXPECT_EQ(node.micro().wakeups(), 1u);
    EXPECT_FALSE(node.micro().awake());

    // No events were dropped at this gentle rate.
    EXPECT_EQ(node.irqBus().dropped(), 0u);
}

TEST(NodeIntegration, App2FiltersBelowThreshold)
{
    sim::Simulation simulation;

    // Signal alternates between 10 and 200 every 10 ms.
    NodeConfig cfg;
    cfg.sensorSignal = [](sim::Tick t) -> std::uint8_t {
        return (t / 10'000'000) % 2 ? 200 : 10;
    };
    SensorNode node(simulation, "node", cfg);

    apps::AppParams params;
    params.samplePeriodCycles = 1000;
    params.threshold = 128;
    apps::install(node, apps::buildApp2(params));

    simulation.runForSeconds(1.0);

    std::uint64_t decisions = node.filter().decisions();
    std::uint64_t passes = node.filter().passes();
    EXPECT_GE(decisions, 98u);
    // Roughly half the samples pass.
    EXPECT_NEAR(static_cast<double>(passes),
                static_cast<double>(decisions) / 2, decisions * 0.2);
    EXPECT_EQ(node.radio().framesSent(), passes);
}

TEST(NodeIntegration, App3ForwardsAndDeduplicates)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel");
    SensorNode node(simulation, "node", testConfig(), &channel);

    apps::AppParams params;
    params.samplePeriodCycles = 50'000; // slow sampling; focus on RX
    params.threshold = 0;
    apps::install(node, apps::buildApp3(params));

    // Let init finish.
    simulation.runForSeconds(0.01);

    // A foreign frame destined elsewhere arrives: the node forwards it.
    net::Frame frame;
    frame.seq = 7;
    frame.src = 0x0055;
    frame.dest = 0x0000;
    frame.destPan = node.config().pan;
    frame.payload = {99};
    node.radio().injectFrame(frame);
    simulation.runForSeconds(0.05);

    EXPECT_EQ(node.msgProc().forwarded(), 1u);
    EXPECT_GE(node.radio().framesSent(), 1u);
    EXPECT_EQ(node.radio().lastTxFrame().seq, 7);
    EXPECT_EQ(node.radio().lastTxFrame().src, 0x0055);

    // The same packet again: duplicate-suppressed by the CAM.
    node.radio().injectFrame(frame);
    simulation.runForSeconds(0.05);
    EXPECT_EQ(node.msgProc().duplicatesDropped(), 1u);
    EXPECT_EQ(node.msgProc().forwarded(), 1u);
}

TEST(NodeIntegration, App4ReconfiguresTimerViaMcu)
{
    sim::Simulation simulation;
    SensorNode node(simulation, "node", testConfig(200));

    apps::AppParams params;
    params.samplePeriodCycles = 1000;
    params.threshold = 0;
    apps::install(node, apps::buildApp4(params));
    simulation.runForSeconds(0.05);

    std::uint64_t wakeups_before = node.micro().wakeups();

    // An irregular (802.15.4 command) frame asks for a 2000-cycle period.
    net::Frame cmd;
    cmd.type = net::Frame::Type::Command;
    cmd.seq = 1;
    cmd.src = 0x0042; // the authorised reconfigurer (see apps.cc ACL)
    cmd.dest = node.config().address;
    cmd.destPan = node.config().pan;
    cmd.payload = {0 /*timer*/, 0x07, 0xD0 /*2000*/};
    node.radio().injectFrame(cmd);
    simulation.runForSeconds(0.1);

    EXPECT_EQ(node.msgProc().irregulars(), 1u);
    EXPECT_EQ(node.micro().wakeups(), wakeups_before + 1);
    EXPECT_FALSE(node.micro().awake()); // back asleep

    // Sampling now happens at the new 2000-cycle (50 Hz) period.
    std::uint64_t sent_before = node.radio().framesSent();
    simulation.runForSeconds(1.0);
    std::uint64_t sent = node.radio().framesSent() - sent_before;
    EXPECT_GE(sent, 48u);
    EXPECT_LE(sent, 52u);

    // And a threshold change too.
    net::Frame cmd2 = cmd;
    cmd2.seq = 2;
    cmd2.payload = {1 /*threshold*/, 255, 0};
    node.radio().injectFrame(cmd2);
    simulation.runForSeconds(0.1);
    EXPECT_EQ(node.filter().threshold(), 255);

    // With threshold 255 and signal 200 nothing passes any more.
    sent_before = node.radio().framesSent();
    simulation.runForSeconds(0.5);
    EXPECT_EQ(node.radio().framesSent(), sent_before);
}

TEST(NodeIntegration, EpIsIdleBetweenEvents)
{
    sim::Simulation simulation;
    SensorNode node(simulation, "node", testConfig());

    apps::AppParams params;
    params.samplePeriodCycles = 10'000; // 10 Hz
    apps::install(node, apps::buildApp1(params));

    simulation.runForSeconds(2.0);

    // At 10 Hz and ~102 busy cycles per sample, utilization ~1 %.
    EXPECT_LT(node.ep().utilization(), 0.05);
    EXPECT_GT(node.ep().utilization(), 0.001);

    // Average EP power must sit near the idle floor (Table 5: 18 nW),
    // far below the 14.25 uW active figure.
    EXPECT_LT(node.ep().averagePowerWatts(), 1e-6);
}
