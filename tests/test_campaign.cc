/**
 * @file
 * Campaign engine tests: spec expansion, the append-only results store
 * (round-trip, torn-tail recovery, resume bookkeeping), the
 * multi-process runner (all-ok fan-out, job-count determinism, resume
 * completing exactly the missing runs, crash/flaky/wedge robustness via
 * the "!"-prefixed test hooks), and report aggregation with the
 * baseline gate.
 *
 * This binary is its own campaign worker: main() dispatches the
 * "campaign-worker" verb to campaign::workerMain before gtest sees
 * argv, so RunnerConfig::workerExe can simply be /proc/self/exe.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include <unistd.h>

#include "campaign/report.hh"
#include "campaign/runner.hh"
#include "campaign/spec.hh"
#include "campaign/store.hh"
#include "scenario/scenario.hh"
#include "sim/logging.hh"

using namespace ulp;

namespace {

/** A 4-node routed grid small enough that one run is a few ms. */
constexpr const char *baseScenarioText = R"ini(
[scenario]
name = test-campaign-grid
seconds = 0.2
seed = 7

[nodes]
count = 4
app = app3
period = 2000
signal = sine:60,5
placement = grid
spacing = 40

[radio]
model = spatial
path-loss-exponent = 2.8
sensitivity-dbm = -90

[routes]
sink = 0
)ini";

scenario::Scenario
baseScenario()
{
    return scenario::parseScenario(baseScenarioText, "<test_campaign>");
}

std::string
selfExecutable()
{
    char buf[4096];
    ssize_t n = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
    EXPECT_GT(n, 0);
    buf[n > 0 ? n : 0] = '\0';
    return buf;
}

/** Unique per-test scratch directory, removed on destruction. */
struct TmpDir
{
    std::filesystem::path path;

    TmpDir()
    {
        std::string templ = (std::filesystem::temp_directory_path() /
                             "ulp_test_campaign.XXXXXX")
                                .string();
        char *dir = ::mkdtemp(templ.data());
        EXPECT_NE(dir, nullptr);
        path = dir ? dir : templ;
    }
    ~TmpDir()
    {
        std::error_code ec;
        std::filesystem::remove_all(path, ec);
    }

    std::string
    file(const std::string &name) const
    {
        return (path / name).string();
    }
};

campaign::RunnerConfig
testConfig(unsigned jobs, double timeoutSeconds = 60.0)
{
    campaign::RunnerConfig cfg;
    cfg.workerExe = selfExecutable();
    cfg.jobs = jobs;
    cfg.timeoutSeconds = timeoutSeconds;
    cfg.testHooks = true;
    cfg.quiet = true;
    return cfg;
}

/** A seed-ensemble run list over the test scenario. */
std::vector<campaign::RunSpec>
seedRuns(unsigned count, std::uint64_t seedBase = 100)
{
    std::vector<campaign::RunSpec> runs;
    for (unsigned r = 0; r < count; ++r) {
        campaign::RunSpec run;
        run.id = r;
        run.overrides.emplace_back("scenario.seed",
                                   std::to_string(seedBase + r));
        runs.push_back(std::move(run));
    }
    return runs;
}

campaign::ResultsStore
freshStore(const std::string &path, const std::string &canonical,
           const std::vector<campaign::RunSpec> &runs)
{
    return campaign::ResultsStore::open(
        path,
        {"test", "<inline>", runs.size(),
         campaign::campaignDigest(canonical, runs)},
        false);
}

std::map<std::uint64_t, campaign::RunRecord>
loadById(const std::string &path)
{
    std::map<std::uint64_t, campaign::RunRecord> out;
    for (campaign::RunRecord &record :
         campaign::ResultsStore::load(path)) {
        EXPECT_EQ(out.count(record.id), 0u)
            << "duplicate record for run " << record.id;
        out[record.id] = std::move(record);
    }
    return out;
}

} // namespace

// --- spec ------------------------------------------------------------------

TEST(CampaignSpec, ParsesSectionsAndExpandsCartesianProduct)
{
    const campaign::CampaignSpec spec = campaign::parseCampaign(
        "[campaign]\n"
        "name = sweep\n"
        "scenario = base.ini\n"
        "repeat = 2\n"
        "seed-base = 100\n"
        "[axis]\n"
        "nodes.period = 1000, 2000\n"
        "scenario.seconds = 1..3\n"
        "[run]\n"
        "nodes.count = 6\n",
        "<spec>");
    EXPECT_EQ(spec.name, "sweep");
    EXPECT_EQ(spec.scenario, "base.ini");
    EXPECT_EQ(spec.repeat, 2u);
    ASSERT_EQ(spec.axes.size(), 2u);
    EXPECT_EQ(spec.axes[0].values,
              (std::vector<std::string>{"1000", "2000"}));
    EXPECT_EQ(spec.axes[1].values,
              (std::vector<std::string>{"1", "2", "3"}));

    const std::vector<campaign::RunSpec> runs =
        campaign::expandRuns(spec, baseScenario());
    // 2 periods x 3 seconds x 2 seeds + 1 explicit run.
    ASSERT_EQ(runs.size(), 13u);
    for (std::size_t i = 0; i < runs.size(); ++i)
        EXPECT_EQ(runs[i].id, i);

    // Last axis fastest, seeds innermost: run 0 and 1 differ only in
    // seed; run 2 moves `scenario.seconds`; run 6 moves `nodes.period`.
    EXPECT_EQ(runs[0].label(),
              "nodes.period=1000 scenario.seconds=1 scenario.seed=100");
    EXPECT_EQ(runs[1].label(),
              "nodes.period=1000 scenario.seconds=1 scenario.seed=101");
    EXPECT_EQ(runs[2].label(),
              "nodes.period=1000 scenario.seconds=2 scenario.seed=100");
    EXPECT_EQ(runs[6].label(),
              "nodes.period=2000 scenario.seconds=1 scenario.seed=100");
    // The explicit [run] section lands after the sweep, verbatim.
    EXPECT_EQ(runs[12].label(), "nodes.count=6");
}

TEST(CampaignSpec, RepeatWithoutSeedBaseUsesTheScenarioSeed)
{
    const campaign::CampaignSpec spec = campaign::parseCampaign(
        "[campaign]\n"
        "scenario = base.ini\n"
        "repeat = 3\n",
        "<spec>");
    const std::vector<campaign::RunSpec> runs =
        campaign::expandRuns(spec, baseScenario()); // base seed = 7
    ASSERT_EQ(runs.size(), 3u);
    EXPECT_EQ(runs[0].label(), "scenario.seed=7");
    EXPECT_EQ(runs[2].label(), "scenario.seed=9");
}

TEST(CampaignSpec, SingleRunCampaignEmitsNoSeedOverride)
{
    const campaign::CampaignSpec spec = campaign::parseCampaign(
        "[campaign]\nscenario = base.ini\n", "<spec>");
    const std::vector<campaign::RunSpec> runs =
        campaign::expandRuns(spec, baseScenario());
    ASSERT_EQ(runs.size(), 1u);
    EXPECT_TRUE(runs[0].overrides.empty());
}

TEST(CampaignSpec, RejectsMalformedSpecs)
{
    EXPECT_THROW(campaign::parseCampaign("[campaign]\nname = x\n", "<s>"),
                 sim::FatalError); // no scenario
    EXPECT_THROW(campaign::parseCampaign("name = x\n", "<s>"),
                 sim::FatalError); // key before any section
    EXPECT_THROW(campaign::parseCampaign("[campaign]\nscenario = b\n"
                                         "[axis]\nk = 1\nk = 2\n",
                                         "<s>"),
                 sim::FatalError); // duplicate axis
    EXPECT_THROW(campaign::parseCampaign("[campaign]\nscenario = b\n"
                                         "repeat = 0\n",
                                         "<s>"),
                 sim::FatalError);
    EXPECT_THROW(campaign::parseCampaign("[campaign]\nscenario = b\n"
                                         "[axis]\nk = 5..2\n",
                                         "<s>"),
                 sim::FatalError); // backwards range
    EXPECT_THROW(campaign::parseCampaign("[campaign]\nscenario = b\n"
                                         "[run]\n",
                                         "<s>"),
                 sim::FatalError); // empty [run]
}

TEST(CampaignSpec, RepeatCannotCombineWithAnExplicitSeedAxis)
{
    const campaign::CampaignSpec spec = campaign::parseCampaign(
        "[campaign]\nscenario = b\nrepeat = 2\n"
        "[axis]\nscenario.seed = 1, 2\n",
        "<spec>");
    EXPECT_THROW(campaign::expandRuns(spec, baseScenario()),
                 sim::FatalError);
}

TEST(CampaignSpec, ResolveRunAppliesOverridesAndRevalidates)
{
    const scenario::Scenario base = baseScenario();

    campaign::RunSpec run;
    run.overrides.emplace_back("nodes.period", "500");
    run.overrides.emplace_back("scenario.seed", "42");
    const scenario::Scenario sc =
        campaign::resolveRun(base, run, "<test>");
    EXPECT_EQ(sc.nodes.period, 500u);
    EXPECT_EQ(sc.seed, 42u);

    campaign::RunSpec bogusKey;
    bogusKey.overrides.emplace_back("nodes.no-such-key", "1");
    EXPECT_THROW(campaign::resolveRun(base, bogusKey, "<test>"),
                 sim::FatalError);

    // applyScenarioKey accepts a [node 9] override in isolation; the
    // batch re-validation must still catch the out-of-range index.
    campaign::RunSpec outOfRange;
    outOfRange.overrides.emplace_back("node.9.period", "1000");
    EXPECT_THROW(campaign::resolveRun(base, outOfRange, "<test>"),
                 sim::FatalError);
}

TEST(CampaignSpec, DigestCoversScenarioAndRunList)
{
    const std::vector<campaign::RunSpec> runs = seedRuns(3);
    const std::uint64_t digest = campaign::campaignDigest("scenario", runs);
    EXPECT_EQ(digest, campaign::campaignDigest("scenario", runs));
    EXPECT_NE(digest, campaign::campaignDigest("scenario2", runs));
    EXPECT_NE(digest, campaign::campaignDigest("scenario", seedRuns(4)));
    EXPECT_NE(digest,
              campaign::campaignDigest("scenario", seedRuns(3, 200)));
}

// --- store -----------------------------------------------------------------

TEST(ResultsStore, RoundTripsRecordsThroughDisk)
{
    TmpDir tmp;
    const std::string path = tmp.file("store.jsonl");
    const campaign::ResultsStore::Header header{"camp", "base.ini", 2,
                                                0xdeadbeefULL};
    {
        campaign::ResultsStore store =
            campaign::ResultsStore::open(path, header, false);
        EXPECT_TRUE(store.completed().empty());

        campaign::RunRecord ok;
        ok.id = 0;
        ok.status = "ok";
        ok.attempts = 1;
        ok.elapsedUs = 1234;
        ok.overrides = {"nodes.period=500", "scenario.seed=1"};
        ok.stats = "{\"events\":10,\"energy_j\":1.5e-05}";
        store.append(ok);

        campaign::RunRecord failed;
        failed.id = 1;
        failed.status = "failed";
        failed.attempts = 2;
        failed.error = "worker said \"no\"\n\ttab and \x01 control";
        store.append(failed);
    }

    campaign::ResultsStore::Header loaded;
    const std::vector<campaign::RunRecord> records =
        campaign::ResultsStore::load(path, &loaded);
    EXPECT_EQ(loaded.campaign, "camp");
    EXPECT_EQ(loaded.scenario, "base.ini");
    EXPECT_EQ(loaded.runs, 2u);
    EXPECT_EQ(loaded.digest, 0xdeadbeefULL);

    ASSERT_EQ(records.size(), 2u);
    EXPECT_EQ(records[0].id, 0u);
    EXPECT_EQ(records[0].status, "ok");
    EXPECT_EQ(records[0].attempts, 1u);
    EXPECT_EQ(records[0].elapsedUs, 1234u);
    EXPECT_EQ(records[0].overrides,
              (std::vector<std::string>{"nodes.period=500",
                                        "scenario.seed=1"}));
    // The stats object must survive verbatim — it is the byte-identity
    // contract the determinism oracle compares.
    EXPECT_EQ(records[0].stats, "{\"events\":10,\"energy_j\":1.5e-05}");
    EXPECT_EQ(records[1].status, "failed");
    EXPECT_EQ(records[1].attempts, 2u);
    EXPECT_EQ(records[1].error,
              "worker said \"no\"\n\ttab and \x01 control");
}

TEST(ResultsStore, ResumeTruncatesATornFinalLine)
{
    TmpDir tmp;
    const std::string path = tmp.file("store.jsonl");
    const campaign::ResultsStore::Header header{"camp", "b", 4, 99};
    {
        campaign::ResultsStore store =
            campaign::ResultsStore::open(path, header, false);
        for (std::uint64_t id = 0; id < 2; ++id) {
            campaign::RunRecord record;
            record.id = id;
            record.status = "ok";
            record.stats = "{}";
            store.append(record);
        }
    }
    // A coordinator killed mid-write leaves a partial last line.
    {
        std::ofstream torn(path, std::ios::app);
        torn << "{\"id\":2,\"status\":\"ok";
    }

    // load() tolerates the torn tail; the torn record is not returned.
    EXPECT_EQ(campaign::ResultsStore::load(path).size(), 2u);

    campaign::ResultsStore store =
        campaign::ResultsStore::open(path, header, true);
    EXPECT_EQ(store.tornTail(), 1u);
    EXPECT_EQ(store.completed(),
              (std::set<std::uint64_t>{0, 1})); // the torn id 2 is gone

    // Appending after the truncation yields a clean, fully parseable
    // store again.
    campaign::RunRecord record;
    record.id = 2;
    record.status = "ok";
    record.stats = "{}";
    store.append(record);
    EXPECT_EQ(campaign::ResultsStore::load(path).size(), 3u);
}

TEST(ResultsStore, RefusesCorruptMiddleAndMismatchedStores)
{
    TmpDir tmp;
    const std::string path = tmp.file("store.jsonl");
    const campaign::ResultsStore::Header header{"camp", "b", 2, 7};
    {
        campaign::ResultsStore store =
            campaign::ResultsStore::open(path, header, false);
        campaign::RunRecord record;
        record.id = 0;
        record.status = "ok";
        record.stats = "{}";
        store.append(record);
    }

    // Existing file without --resume: overwriting results must be an
    // explicit choice.
    EXPECT_THROW(campaign::ResultsStore::open(path, header, false),
                 sim::FatalError);

    // Resuming under a different digest (edited spec) must fail loudly.
    campaign::ResultsStore::Header other = header;
    other.digest = 8;
    EXPECT_THROW(campaign::ResultsStore::open(path, other, true),
                 sim::FatalError);

    // A torn line in the MIDDLE is data loss, not a crash artifact.
    std::string text;
    {
        std::ifstream in(path);
        std::stringstream buffer;
        buffer << in.rdbuf();
        text = buffer.str();
    }
    {
        std::ofstream out(path, std::ios::trunc);
        out << text << "garbage not json\n";
        campaign::RunRecord record; // valid line after the corruption
        out << "{\"id\":1,\"status\":\"ok\",\"attempts\":1,"
               "\"elapsed_us\":0,\"overrides\":[],\"stats\":{},"
               "\"error\":\"\"}\n";
        (void)record;
    }
    EXPECT_THROW(campaign::ResultsStore::load(path), sim::FatalError);
    EXPECT_THROW(campaign::ResultsStore::open(path, header, true),
                 sim::FatalError);
}

TEST(ResultsStore, FieldEncodingRoundTrips)
{
    const std::string nasty = "a b\tc%20\r\nd";
    EXPECT_EQ(campaign::decodeField(campaign::encodeField(nasty)), nasty);
    // The encoded form must be line-framing safe.
    const std::string encoded = campaign::encodeField(nasty);
    EXPECT_EQ(encoded.find_first_of(" \t\r\n"), std::string::npos);
}

// --- runner ----------------------------------------------------------------

TEST(CampaignRunner, RunsEveryRunToAnOkRecord)
{
    TmpDir tmp;
    const std::string canonical =
        scenario::printScenario(baseScenario());
    const std::vector<campaign::RunSpec> runs = seedRuns(6);
    const std::string path = tmp.file("store.jsonl");

    campaign::ResultsStore store = freshStore(path, canonical, runs);
    const campaign::CampaignResult outcome =
        campaign::runCampaign(canonical, runs, store, testConfig(2));
    EXPECT_EQ(outcome.ok, 6u);
    EXPECT_EQ(outcome.failed, 0u);
    EXPECT_EQ(outcome.skipped, 0u);

    const auto byId = loadById(path);
    ASSERT_EQ(byId.size(), 6u);
    for (const auto &[id, record] : byId) {
        EXPECT_EQ(record.status, "ok") << "run " << id;
        EXPECT_EQ(record.attempts, 1u);
        EXPECT_NE(record.stats.find("\"delivery_ratio\":"),
                  std::string::npos);
    }
}

TEST(CampaignRunner, PerRunStatsAreByteIdenticalAcrossJobCounts)
{
    TmpDir tmp;
    const std::string canonical =
        scenario::printScenario(baseScenario());
    const std::vector<campaign::RunSpec> runs = seedRuns(4);

    auto statsAt = [&](unsigned jobs, const std::string &path) {
        campaign::ResultsStore store = freshStore(path, canonical, runs);
        const campaign::CampaignResult outcome = campaign::runCampaign(
            canonical, runs, store, testConfig(jobs));
        EXPECT_EQ(outcome.ok, runs.size());
        std::map<std::uint64_t, std::string> stats;
        for (const auto &[id, record] : loadById(path))
            stats[id] = record.stats;
        return stats;
    };

    const auto serial = statsAt(1, tmp.file("jobs1.jsonl"));
    const auto parallel = statsAt(4, tmp.file("jobs4.jsonl"));
    ASSERT_EQ(serial.size(), 4u);
    EXPECT_EQ(serial, parallel);

    // And the workers agree with an in-process execution of the same
    // resolved scenario — the protocol adds nothing to the stats bytes.
    const scenario::Scenario base = baseScenario();
    for (const auto &[id, stats] : serial) {
        EXPECT_EQ(stats,
                  campaign::executeRun(
                      campaign::resolveRun(base, runs[id], "<test>")))
            << "run " << id;
    }
}

TEST(CampaignRunner, ResumeCompletesExactlyTheMissingRuns)
{
    TmpDir tmp;
    const std::string canonical =
        scenario::printScenario(baseScenario());
    const std::vector<campaign::RunSpec> runs = seedRuns(5);
    const std::string path = tmp.file("store.jsonl");
    const std::uint64_t digest =
        campaign::campaignDigest(canonical, runs);

    {
        campaign::ResultsStore store = freshStore(path, canonical, runs);
        const campaign::CampaignResult outcome = campaign::runCampaign(
            canonical, runs, store, testConfig(2));
        ASSERT_EQ(outcome.ok, 5u);
    }

    // Simulate a crash that lost runs 1 and 3: rewrite the store with
    // those records dropped.
    {
        std::ifstream in(path);
        std::string line;
        std::vector<std::string> kept;
        while (std::getline(in, line)) {
            if (line.find("\"id\":1,") == std::string::npos &&
                line.find("\"id\":3,") == std::string::npos) {
                kept.push_back(line);
            }
        }
        ASSERT_EQ(kept.size(), 4u); // header + 3 records
        std::ofstream out(path, std::ios::trunc);
        for (const std::string &keep : kept)
            out << keep << "\n";
    }

    campaign::ResultsStore store = campaign::ResultsStore::open(
        path, {"test", "<inline>", runs.size(), digest}, true);
    EXPECT_EQ(store.completed(), (std::set<std::uint64_t>{0, 2, 4}));
    const campaign::CampaignResult outcome =
        campaign::runCampaign(canonical, runs, store, testConfig(2));
    EXPECT_EQ(outcome.ok, 2u);
    EXPECT_EQ(outcome.skipped, 3u);

    // Every run present exactly once (loadById asserts no duplicates).
    const auto byId = loadById(path);
    ASSERT_EQ(byId.size(), 5u);
    for (std::uint64_t id = 0; id < 5; ++id) {
        ASSERT_TRUE(byId.count(id)) << "run " << id;
        EXPECT_EQ(byId.at(id).status, "ok");
    }
}

TEST(CampaignRunner, CrashedRunIsRetriedOnceThenRecordedFailed)
{
    TmpDir tmp;
    const std::string canonical =
        scenario::printScenario(baseScenario());
    std::vector<campaign::RunSpec> runs = seedRuns(3);
    runs[1].overrides.emplace_back("!kill", "hard");
    const std::string path = tmp.file("store.jsonl");

    campaign::ResultsStore store = freshStore(path, canonical, runs);
    const campaign::CampaignResult outcome =
        campaign::runCampaign(canonical, runs, store, testConfig(2));
    EXPECT_EQ(outcome.ok, 2u);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_EQ(outcome.retried, 1u);

    const auto byId = loadById(path);
    ASSERT_EQ(byId.size(), 3u);
    EXPECT_EQ(byId.at(0).status, "ok");
    EXPECT_EQ(byId.at(2).status, "ok");
    const campaign::RunRecord &dead = byId.at(1);
    EXPECT_EQ(dead.status, "failed");
    EXPECT_EQ(dead.attempts, 2u); // fresh worker, one retry
    EXPECT_NE(dead.error.find("signal 9"), std::string::npos)
        << dead.error;
}

TEST(CampaignRunner, NonzeroExitIsRetriedAndCaptured)
{
    TmpDir tmp;
    const std::string canonical =
        scenario::printScenario(baseScenario());
    std::vector<campaign::RunSpec> runs = seedRuns(2);
    runs[0].overrides.emplace_back("!kill", "exit");
    const std::string path = tmp.file("store.jsonl");

    campaign::ResultsStore store = freshStore(path, canonical, runs);
    const campaign::CampaignResult outcome =
        campaign::runCampaign(canonical, runs, store, testConfig(1));
    EXPECT_EQ(outcome.ok, 1u);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_EQ(outcome.retried, 1u);
    const auto byId = loadById(path);
    EXPECT_NE(byId.at(0).error.find("exited with status 3"),
              std::string::npos)
        << byId.at(0).error;
}

TEST(CampaignRunner, FlakyRunRecoversOnTheRetry)
{
    TmpDir tmp;
    const std::string canonical =
        scenario::printScenario(baseScenario());
    std::vector<campaign::RunSpec> runs = seedRuns(2);
    // The hook SIGKILLs the worker the first time through and succeeds
    // once its marker file exists — exercising the happy retry path.
    runs[0].overrides.emplace_back("!flaky", tmp.file("marker"));
    const std::string path = tmp.file("store.jsonl");

    campaign::ResultsStore store = freshStore(path, canonical, runs);
    const campaign::CampaignResult outcome =
        campaign::runCampaign(canonical, runs, store, testConfig(2));
    EXPECT_EQ(outcome.ok, 2u);
    EXPECT_EQ(outcome.failed, 0u);
    EXPECT_EQ(outcome.retried, 1u);

    const auto byId = loadById(path);
    EXPECT_EQ(byId.at(0).status, "ok");
    EXPECT_EQ(byId.at(0).attempts, 2u);
    EXPECT_EQ(byId.at(1).attempts, 1u);
}

TEST(CampaignRunner, WedgedWorkerIsKilledByTheTimeout)
{
    TmpDir tmp;
    const std::string canonical =
        scenario::printScenario(baseScenario());
    std::vector<campaign::RunSpec> runs = seedRuns(2);
    runs[0].overrides.emplace_back("!kill", "wedge");
    const std::string path = tmp.file("store.jsonl");

    campaign::ResultsStore store = freshStore(path, canonical, runs);
    const campaign::CampaignResult outcome = campaign::runCampaign(
        canonical, runs, store, testConfig(2, 0.3));
    EXPECT_EQ(outcome.ok, 1u);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_EQ(outcome.retried, 1u); // wedged again on the retry

    const auto byId = loadById(path);
    const campaign::RunRecord &wedged = byId.at(0);
    EXPECT_EQ(wedged.status, "failed");
    EXPECT_EQ(wedged.attempts, 2u);
    EXPECT_NE(wedged.error.find("timeout"), std::string::npos)
        << wedged.error;
    EXPECT_EQ(byId.at(1).status, "ok");
}

TEST(CampaignRunner, DeterministicScenarioErrorFailsWithoutRetry)
{
    TmpDir tmp;
    const std::string canonical =
        scenario::printScenario(baseScenario());
    std::vector<campaign::RunSpec> runs = seedRuns(2);
    // A bad override is a clean worker-reported failure: retrying on a
    // fresh process cannot change the outcome, so the runner must not.
    runs[0].overrides.emplace_back("nodes.no-such-key", "1");
    const std::string path = tmp.file("store.jsonl");

    campaign::ResultsStore store = freshStore(path, canonical, runs);
    const campaign::CampaignResult outcome =
        campaign::runCampaign(canonical, runs, store, testConfig(1));
    EXPECT_EQ(outcome.ok, 1u);
    EXPECT_EQ(outcome.failed, 1u);
    EXPECT_EQ(outcome.retried, 0u);

    const auto byId = loadById(path);
    EXPECT_EQ(byId.at(0).status, "failed");
    EXPECT_EQ(byId.at(0).attempts, 1u);
    EXPECT_NE(byId.at(0).error.find("no-such-key"), std::string::npos)
        << byId.at(0).error;
}

// --- report ----------------------------------------------------------------

namespace {

campaign::RunRecord
okRecord(std::uint64_t id, const std::string &axis, unsigned seed,
         double delivery, double energyPerBit, double lifetime)
{
    campaign::RunRecord record;
    record.id = id;
    record.status = "ok";
    if (!axis.empty())
        record.overrides.push_back(axis);
    record.overrides.push_back("scenario.seed=" + std::to_string(seed));
    char stats[256];
    std::snprintf(stats, sizeof stats,
                  "{\"delivery_ratio\":%.6f,\"energy_per_bit_j\":%.9g,"
                  "\"lifetime_s\":%.6f}",
                  delivery, energyPerBit, lifetime);
    record.stats = stats;
    return record;
}

} // namespace

TEST(CampaignReport, GroupsBySweepPointIgnoringTheEnsembleSeed)
{
    std::vector<campaign::RunRecord> records;
    for (unsigned seed = 0; seed < 4; ++seed) {
        records.push_back(okRecord(seed, "nodes.period=1000", seed,
                                   0.90 + 0.01 * seed, 1e-6, 10.0));
        records.push_back(okRecord(4 + seed, "nodes.period=2000", seed,
                                   0.70 + 0.01 * seed, 2e-6, 20.0));
    }
    // A failed record must not contribute to any group.
    campaign::RunRecord failed;
    failed.id = 8;
    failed.status = "failed";
    failed.overrides = {"nodes.period=1000", "scenario.seed=9"};
    records.push_back(failed);

    const std::vector<campaign::GroupSummary> groups =
        campaign::summarize(records);
    ASSERT_EQ(groups.size(), 2u);
    EXPECT_EQ(groups[0].group, "nodes.period=1000");
    EXPECT_EQ(groups[0].n, 4u);
    // Nearest-rank p50 over {0.90,0.91,0.92,0.93} is the 2nd value.
    EXPECT_NEAR(groups[0].deliveryP50, 0.91, 1e-9);
    EXPECT_NEAR(groups[0].deliveryP99, 0.93, 1e-9);
    EXPECT_EQ(groups[1].group, "nodes.period=2000");
    EXPECT_NEAR(groups[1].energyPerBitP50, 2e-6, 1e-15);
    EXPECT_NEAR(groups[1].lifetimeP50, 20.0, 1e-9);
}

TEST(CampaignReport, BaselineGatePassesWithinToleranceAndFailsOutside)
{
    TmpDir tmp;
    std::vector<campaign::RunRecord> records;
    for (unsigned seed = 0; seed < 3; ++seed)
        records.push_back(okRecord(seed, "nodes.period=1000", seed,
                                   0.9, 1e-6, 10.0));
    const std::vector<campaign::GroupSummary> groups =
        campaign::summarize(records);

    const std::string path = tmp.file("baseline.json");
    campaign::writeBaseline(path, {"camp", "b", 3, 1}, groups);
    EXPECT_EQ(campaign::checkBaseline(path, groups, 0.05), 0u);

    // Nudge delivery by 2%: inside a 5% band, outside a 1% band.
    std::vector<campaign::GroupSummary> nudged = groups;
    nudged[0].deliveryP50 *= 1.02;
    EXPECT_EQ(campaign::checkBaseline(path, nudged, 0.05), 0u);
    EXPECT_GT(campaign::checkBaseline(path, nudged, 0.01), 0u);

    // A group missing from either side is a violation, not a skip.
    std::vector<campaign::GroupSummary> renamed = groups;
    renamed[0].group = "nodes.period=9999";
    EXPECT_GT(campaign::checkBaseline(path, renamed, 0.05), 0u);
}

// ---------------------------------------------------------------------------

int
main(int argc, char **argv)
{
    // This binary is its own campaign worker: the runner tests point
    // workerExe at /proc/self/exe and the verb must win before gtest
    // parses the command line.
    if (argc > 1 && std::strcmp(argv[1], "campaign-worker") == 0)
        return campaign::workerMain(argc, argv);

    ::testing::InitGoogleTest(&argc, argv);
    sim::setQuiet(true);
    return RUN_ALL_TESTS();
}
