/**
 * @file
 * Remote reconfiguration over a multi-hop network (application version 4,
 * the paper's most complex test application): three nodes run
 * sample-filter-send with forwarding; the base station broadcasts
 * reconfiguration commands (irregular messages) that wake each node's
 * microcontroller to change the sampling period and the filter threshold
 * at runtime. Regular traffic keeps flowing through the event processor
 * alone the whole time.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "net/packet_sink.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

namespace {

net::Frame
reconfigCommand(std::uint16_t target_node, std::uint8_t kind,
                std::uint16_t value, std::uint8_t seq)
{
    net::Frame cmd;
    cmd.type = net::Frame::Type::Command;
    cmd.seq = seq;
    cmd.src = 0x0042; // the authorised reconfigurer (apps.cc ACL)
    cmd.dest = target_node;
    cmd.destPan = NodeConfig{}.pan;
    cmd.payload = {kind, static_cast<std::uint8_t>(value >> 8),
                   static_cast<std::uint8_t>(value & 0xFF)};
    return cmd;
}

} // namespace

int
main()
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel");
    net::PacketSink baseStation(channel);

    constexpr unsigned numNodes = 3;
    std::vector<std::unique_ptr<SensorNode>> nodes;
    for (unsigned i = 0; i < numNodes; ++i) {
        NodeConfig cfg;
        cfg.address = static_cast<std::uint16_t>(0x0001 + i);
        cfg.seed = 500 + i;
        cfg.clockHz = 100'000.0 * (1.0 + 40e-6 * i); // crystal tolerance
        cfg.sensorSignal = [](sim::Tick) { return 180; };
        nodes.push_back(std::make_unique<SensorNode>(
            simulation, "node" + std::to_string(i), cfg, &channel));

        apps::AppParams params;
        params.samplePeriodCycles = 50'000 + 5'000 * i; // ~2 Hz staggered
        params.threshold = 100;
        apps::install(*nodes[i], apps::buildApp4(params));
    }

    simulation.runForSeconds(20.0);
    std::uint64_t sent_before = nodes[1]->radio().framesSent();
    std::printf("Phase 1 (20 s, ~2 Hz sampling, threshold 100):\n");
    for (auto &node : nodes) {
        std::printf("  %s: %llu frames sent, uC wakeups %llu\n",
                    node->name().c_str(),
                    static_cast<unsigned long long>(
                        node->radio().framesSent()),
                    static_cast<unsigned long long>(
                        node->micro().wakeups()));
    }

    // Change node 1 to a 0.4 s period via an over-the-air command. The other
    // nodes forward it (dest mismatch), node 1 recognises the command
    // frame as irregular and wakes its microcontroller.
    std::printf("\nBroadcasting: node 0x0002 -> period 40000 cycles "
                "(2.5 Hz -> 0.4 s)\n");
    baseStation.send(reconfigCommand(0x0002, 0, 40'000, 1));
    simulation.runForSeconds(20.0);

    std::uint64_t sent_after = nodes[1]->radio().framesSent() - sent_before;
    std::printf("Phase 2 (20 s): node1 sent %llu frames (expect ~%d at "
                "the new 0.4 s period)\n",
                static_cast<unsigned long long>(sent_after), 50);
    std::printf("  node1 uC wakeups now: %llu (one more: the irregular "
                "event)\n",
                static_cast<unsigned long long>(
                    nodes[1]->micro().wakeups()));

    // Raise every node's threshold above the signal: traffic stops.
    std::printf("\nBroadcasting threshold 250 to all nodes "
                "(signal is 180):\n");
    for (unsigned i = 0; i < numNodes; ++i) {
        baseStation.send(reconfigCommand(
            static_cast<std::uint16_t>(0x0001 + i), 1, 250 << 8,
            static_cast<std::uint8_t>(10 + i)));
        simulation.runForSeconds(1.0);
    }
    std::uint64_t sends[numNodes];
    for (unsigned i = 0; i < numNodes; ++i)
        sends[i] = nodes[i]->radio().framesSent();
    simulation.runForSeconds(20.0);

    std::printf("Phase 3 (20 s with threshold 250):\n");
    for (unsigned i = 0; i < numNodes; ++i) {
        std::printf("  %s: %llu new frames (expect 0), threshold now %u, "
                    "filter decisions %llu\n",
                    nodes[i]->name().c_str(),
                    static_cast<unsigned long long>(
                        nodes[i]->radio().framesSent() - sends[i]),
                    nodes[i]->filter().threshold(),
                    static_cast<unsigned long long>(
                        nodes[i]->filter().decisions()));
    }

    std::printf("\nNetwork totals: %llu unique data packets at the base "
                "station, %llu duplicates suppressed there,\n%llu "
                "msgproc-level duplicate drops across nodes, %llu channel "
                "collisions\n",
                static_cast<unsigned long long>(
                    baseStation.uniqueDeliveries()),
                static_cast<unsigned long long>(baseStation.duplicates()),
                static_cast<unsigned long long>(
                    nodes[0]->msgProc().duplicatesDropped() +
                    nodes[1]->msgProc().duplicatesDropped() +
                    nodes[2]->msgProc().duplicatesDropped()),
                static_cast<unsigned long long>(channel.collisions()));
    return 0;
}
