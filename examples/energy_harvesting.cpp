/**
 * @file
 * The design target, closed end-to-end: "a truly untethered device that
 * operates indefinitely off of energy scavenged from the ambient
 * environment" (paper §1). Vibrational harvesting yields on the order of
 * 100 uW for mote-sized devices (§2) — the reason the paper budgets the
 * whole system at 100 uW.
 *
 * Scenario 1: a node running the monitoring application off a 100 uW
 * vibration source and a small supercapacitor. At ~1.5-3 uW the store
 * never runs dry.
 *
 * Scenario 2: the same source feeding a Mica2-class CPU draw (power-save
 * floor 330 uW): the store empties and the node brown-outs.
 *
 * Scenario 3: solar day/night cycling — the capacitor carries the node
 * through the dark half-cycle.
 */

#include <cstdio>
#include <memory>

#include "baseline/mica2_power.hh"
#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "power/harvest.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

namespace {

void
report(const char *title, const power::HarvestingSupply &supply)
{
    std::printf("%s\n", title);
    std::printf("  harvested %.3f mJ, consumed %.3f mJ, store %.1f%% "
                "full, brown-outs: %llu\n",
                supply.harvestedJoules() * 1e3,
                supply.consumedJoules() * 1e3,
                100.0 * supply.store().level() / supply.store().capacity(),
                static_cast<unsigned long long>(supply.brownOuts()));
}

} // namespace

int
main()
{
    constexpr double harvest_watts = 100e-6; // the paper's design target
    constexpr double cap_joules = 0.1;       // small supercap (~20 mF @ 3V)
    const sim::Tick poll = sim::secondsToTicks(0.1);

    // --- Scenario 1: our node on vibration harvesting -----------------------
    {
        sim::Simulation simulation;
        NodeConfig cfg;
        cfg.sensorSignal = [](sim::Tick) { return 150; };
        SensorNode node(simulation, "node", cfg);
        apps::AppParams params;
        params.samplePeriodCycles = 10'000; // 10 Hz monitoring
        apps::install(node, apps::buildApp2(params));

        power::HarvestingSupply supply(
            simulation, "vibration",
            std::make_unique<power::ConstantSource>(harvest_watts),
            power::EnergyStore(cap_joules, cap_joules / 2),
            [&node] { return node.totalAverageWatts(); }, poll);
        supply.start();

        simulation.runForSeconds(600.0);
        report("Scenario 1: this node on a 100 uW vibration source "
               "(10 minutes)", supply);
        std::printf("  node draw: %.3f uW -> sustainable margin %.0fx\n\n",
                    node.totalAverageWatts() * 1e6,
                    harvest_watts / node.totalAverageWatts());
    }

    // --- Scenario 2: a Mica2-class draw on the same source ------------------
    {
        sim::Simulation simulation;
        double mica_watts = baseline::atmelPowerAtUtilization(1e-3);
        power::HarvestingSupply supply(
            simulation, "vibrationMica",
            std::make_unique<power::ConstantSource>(harvest_watts),
            power::EnergyStore(cap_joules, cap_joules / 2),
            [mica_watts] { return mica_watts; }, poll);
        supply.start();

        simulation.runForSeconds(600.0);
        report("Scenario 2: Mica2-class CPU draw on the same source "
               "(10 minutes)", supply);
        std::printf("  draw %.0f uW exceeds the %.0f uW source: store "
                    "drains in ~%.0f s\n\n",
                    mica_watts * 1e6, harvest_watts * 1e6,
                    (cap_joules / 2) / (mica_watts - harvest_watts));
    }

    // --- Scenario 3: solar day/night cycling --------------------------------
    {
        sim::Simulation simulation;
        NodeConfig cfg;
        cfg.sensorSignal = [](sim::Tick) { return 150; };
        SensorNode node(simulation, "nodeSolar", cfg);
        apps::AppParams params;
        params.samplePeriodCycles = 100'000; // 1 Hz
        apps::install(node, apps::buildApp2(params));

        // A scaled 'day': 200 s period, 50 uW peak; dark half-cycles.
        power::HarvestingSupply supply(
            simulation, "solar",
            std::make_unique<power::SinusoidalSource>(50e-6, 200.0),
            power::EnergyStore(0.01, 0.005),
            [&node] { return node.totalAverageWatts(); }, poll);
        supply.start();

        simulation.runForSeconds(1000.0);
        report("Scenario 3: solar day/night cycling (5 'days')", supply);
        std::printf("  the capacitor rides through every dark half-cycle; "
                    "frames sent: %llu\n",
                    static_cast<unsigned long long>(
                        node.radio().framesSent()));
    }
    return 0;
}
