/**
 * @file
 * The Great Duck Island habitat-monitoring deployment (paper §3): every
 * node measures all sensors every 70 seconds and transmits a packet; the
 * paper places this workload at a duty cycle of roughly 0.0001. This
 * example builds a small network — four sensor nodes sharing a lossy
 * channel with a base station — and runs a simulated hour. Distant nodes'
 * packets reach the base station through the multi-hop forwarding of
 * application version 3 (message-processor CAM deduplication keeps the
 * flood bounded).
 *
 * The run reports delivery statistics, the per-node power (which the
 * 70-second period pins near the idle floor), and a battery/harvesting
 * lifetime estimate versus the Mica2.
 */

#include <cstdio>
#include <memory>
#include <vector>

#include "baseline/mica2_power.hh"
#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "net/packet_sink.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

int
main()
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel", net::Channel::defaultBitRate,
                         /*seed=*/7);
    channel.setLossProbability(0.02); // 2% i.i.d. frame loss per receiver
    net::PacketSink baseStation(channel);

    // Four nodes; staggered sampling phases avoid synchronized collisions
    // (GDI nodes were not time-synchronized either).
    constexpr unsigned numNodes = 4;
    constexpr std::uint32_t periodCycles = 7'000'000; // 70 s at 100 kHz

    std::vector<std::unique_ptr<SensorNode>> nodes;
    for (unsigned i = 0; i < numNodes; ++i) {
        NodeConfig cfg;
        cfg.address = static_cast<std::uint16_t>(0x0010 + i);
        cfg.seed = 100 + i;
        // Real crystals differ by tens of ppm; that tolerance is what
        // desynchronizes unsynchronized deployments (and keeps identical
        // flooding nodes from transmitting in lock-step forever).
        cfg.clockHz = 100'000.0 * (1.0 + 40e-6 * i);
        // Burrow occupancy proxy: slow temperature-like drift per node.
        cfg.sensorSignal = [i](sim::Tick now) -> std::uint8_t {
            double hours = sim::ticksToSeconds(now) / 3600.0;
            return static_cast<std::uint8_t>(90 + 10 * i +
                                             20.0 * hours);
        };
        cfg.sensorNoiseStddev = 1.0;
        nodes.push_back(std::make_unique<SensorNode>(
            simulation, "gdi" + std::to_string(i), cfg, &channel));

        apps::AppParams params;
        // Stagger the sampling phase by half a chained-timer tick per
        // node (the chained fast tick is 50,000 cycles, so the offsets
        // below change the chained count, not just the phase).
        params.samplePeriodCycles = periodCycles + 350'000 * i;
        params.threshold = 0;
        params.dest = 0x0000; // base station address
        apps::install(*nodes[i], apps::buildApp3(params));
    }

    const double hours = 1.0;
    simulation.runForSeconds(hours * 3600.0);

    std::printf("Great Duck Island network, %.0f simulated hour(s), "
                "%u nodes, 70 s sampling:\n\n",
                hours, numNodes);
    std::printf("%-8s %10s %10s %12s %12s %12s\n", "node", "sampled",
                "sent", "forwards", "duplicates", "avg power");
    for (unsigned i = 0; i < numNodes; ++i) {
        SensorNode &node = *nodes[i];
        std::printf("%-8s %10llu %10llu %12llu %12llu %9.3f uW\n",
                    node.name().c_str(),
                    static_cast<unsigned long long>(node.sensor().samples()),
                    static_cast<unsigned long long>(
                        node.radio().framesSent()),
                    static_cast<unsigned long long>(
                        node.msgProc().forwarded()),
                    static_cast<unsigned long long>(
                        node.msgProc().duplicatesDropped()),
                    node.totalAverageWatts() * 1e6);
    }

    std::printf("\nBase station: %llu unique packets (%llu duplicate "
                "copies suppressed, %llu corrupted)\n",
                static_cast<unsigned long long>(
                    baseStation.uniqueDeliveries()),
                static_cast<unsigned long long>(baseStation.duplicates()),
                static_cast<unsigned long long>(baseStation.corrupted()));
    for (unsigned i = 0; i < numNodes; ++i) {
        std::printf("  from %s: %llu/%.0f readings delivered\n",
                    nodes[i]->name().c_str(),
                    static_cast<unsigned long long>(
                        baseStation.deliveriesFrom(0x0010 + i)),
                    hours * 3600.0 / 70.0);
    }
    std::printf("  channel collisions: %llu\n",
                static_cast<unsigned long long>(channel.collisions()));

    // Lifetime arithmetic: 2xAA ~ 2850 mAh at 3 V ~ 30.8 kJ.
    double node_watts = nodes[0]->totalAverageWatts();
    double battery_joules = 2.850 * 3.0 * 3600.0;
    double our_years = battery_joules / node_watts / 3.15e7;
    double mica_watts = baseline::atmelPowerAtUtilization(1e-4);
    double mica_years = battery_joules / mica_watts / 3.15e7;
    std::printf("\nLifetime on 2xAA (30.8 kJ), computation only "
                "(battery shelf life would dominate ours):\n");
    std::printf("  this architecture: %7.1f years at %.3f uW "
                "(harvesting-sustainable: < 100 uW)\n",
                our_years, node_watts * 1e6);
    std::printf("  Mica2 CPU:         %7.1f years at %.0f uW (power-save "
                "floor dominates)\n",
                mica_years, mica_watts * 1e6);
    return 0;
}
