/**
 * @file
 * Quickstart: build one sensor node, load the paper's simplest monitoring
 * application (periodically sample and transmit, §6.1.2 version 1), run
 * it for ten simulated seconds, and look at what happened — packets,
 * event processor activity, and the power breakdown.
 *
 *   $ ./examples/quickstart
 */

#include <cmath>
#include <cstdio>
#include <iostream>
#include <numbers>

#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

int
main()
{
    // A Simulation owns the event queue; every SimObject joins it.
    sim::Simulation simulation;

    // Describe the node. Defaults reproduce the paper's operating point:
    // 100 kHz clock, 1.2 V Table 5 power models, 2 KiB banked SRAM.
    NodeConfig cfg;
    cfg.address = 0x0001;
    // The physical phenomenon: a slow sine rides on a constant level.
    cfg.sensorSignal = [](sim::Tick now) -> std::uint8_t {
        double t = sim::ticksToSeconds(now);
        return static_cast<std::uint8_t>(
            128 + 60 * std::sin(2 * std::numbers::pi * t / 5.0));
    };
    cfg.sensorNoiseStddev = 2.0;

    SensorNode node(simulation, "node", cfg);

    // Application version 1: every 10 ms (100 Hz), the timer wakes the
    // event processor, which samples the ADC, has the message processor
    // build an 802.15.4 frame, and fires the radio — all without the
    // microcontroller, which sleeps after initialization.
    apps::AppParams params;
    params.samplePeriodCycles = 1000; // 100 Hz at 100 kHz
    params.dest = 0x0000;             // base station
    apps::install(node, apps::buildApp1(params));

    simulation.runForSeconds(10.0);

    std::printf("After 10 simulated seconds:\n");
    std::printf("  frames sent:          %llu\n",
                static_cast<unsigned long long>(node.radio().framesSent()));
    std::printf("  last payload:         %u\n",
                node.radio().lastTxFrame().payload.empty()
                    ? 0
                    : node.radio().lastTxFrame().payload[0]);
    std::printf("  EP ISRs executed:     %llu\n",
                static_cast<unsigned long long>(node.ep().isrsExecuted()));
    std::printf("  EP utilization:       %.4f\n", node.ep().utilization());
    std::printf("  uC wakeups (init):    %llu\n",
                static_cast<unsigned long long>(node.micro().wakeups()));

    std::printf("\nPower breakdown (average over the run):\n");
    for (const ComponentPower &row : node.powerReport()) {
        std::printf("  %-18s %10.3f uW   (utilization %.4f)\n",
                    row.component.c_str(), row.averageWatts * 1e6,
                    row.utilization);
    }
    std::printf("  %-18s %10.3f uW\n", "TOTAL",
                node.totalAverageWatts() * 1e6);

    std::printf("\nFull statistics tree:\n");
    simulation.dumpStats(std::cout);
    return 0;
}
