/**
 * @file
 * The Harvard volcano deployment (paper §3): infrasound monitoring on
 * the Tungurahua volcano sampled at 100 Hz and radioed multiple samples
 * per packet. This example uses the message processor's sample-batching
 * registers: the timer ISR appends each sample to the staged payload;
 * when the batch fills, the message processor signals the EP to fire a
 * prepare-and-transmit — 20 samples per packet, five packets a second.
 * (The paper's deployment packed 25 samples per packet; the architecture's
 * 32-byte message buffers cap an 802.15.4 frame at 21 payload bytes, see
 * DESIGN.md.)
 *
 * A base station on the channel collects the packets; the run reports the
 * delivered sample stream and the node's power, which the paper's Figure 6
 * places at a duty cycle of 0.12 for this deployment.
 */

#include <cmath>
#include <cstdio>
#include <numbers>

#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "net/packet_sink.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

namespace {

/** EP program: append samples; transmit when the batch fills. */
apps::NodeApp
buildVolcanoApp()
{
    apps::NodeApp app;
    app.name = "volcano-monitor";
    app.ep = epAssemble(R"(
; 100 Hz timer: sample the infrasound microphone, append to the batch
timer_isr:
    SWITCHON SENSOR
    READ SENSOR_DATA
    SWITCHOFF SENSOR
    WRITE MSG_APPEND            ; msgproc accumulates the payload
    TERMINATE

; Batch of 20 samples complete: build the packet
batch_isr:
    WRITEI MSG_CTRL, 1          ; CMD_PREPARE
    TERMINATE

; Packet ready: 9 header + 20 samples + 2 FCS = 31 bytes
txready_isr:
    SWITCHON RADIO
    WRITEI RADIO_TXLEN, 31
    TRANSFER MSG_OUTBUF, RADIO_TXFIFO, 31
    WRITEI RADIO_CTRL, 1
    TERMINATE

txdone_isr:
    SWITCHOFF RADIO
    TERMINATE

.isr Timer0, timer_isr
.isr MsgBatchFull, batch_isr
.isr MsgTxReady, txready_isr
.isr RadioTxDone, txdone_isr
)");

    std::string mc = sim::csprintf(".equ MCU_CODE, %u\n",
                                   core::map::mcuCodeBase);
    mc += R"(
.org MCU_CODE
init:
    LDI r0, 20
    STS MSG_BATCH, r0           ; 20 samples per packet
    LDI r0, 0
    STS MSG_PAYLOAD_LEN, r0
    LDI r0, 0x03
    STS TIMER0_LOADHI, r0       ; 1000 cycles = 100 Hz at 100 kHz
    LDI r0, 0xE8
    STS TIMER0_LOADLO, r0
    LDI r0, 3
    STS TIMER0_CTRL, r0
    SLEEP
)";
    app.mcu = mcu::assemble(mc, epDefaultSymbols());
    app.initEntry = app.mcu.symbol("init");
    return app;
}

} // namespace

int
main()
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel");
    net::PacketSink baseStation(channel);

    NodeConfig cfg;
    cfg.address = 0x0010;
    // Infrasound: a 2 Hz pressure oscillation with occasional bursts.
    cfg.sensorSignal = [](sim::Tick now) -> std::uint8_t {
        double t = sim::ticksToSeconds(now);
        double wave = 40.0 * std::sin(2 * std::numbers::pi * 2.0 * t);
        double burst =
            (std::fmod(t, 30.0) < 2.0)
                ? 50.0 * std::sin(2 * std::numbers::pi * 11.0 * t)
                : 0.0;
        return static_cast<std::uint8_t>(128.0 + wave + burst);
    };
    cfg.sensorNoiseStddev = 1.5;

    SensorNode node(simulation, "volcanoNode", cfg, &channel);
    apps::install(node, buildVolcanoApp());

    const double minutes = 5.0;
    simulation.runForSeconds(minutes * 60.0);

    std::uint64_t samples = node.sensor().samples();
    std::uint64_t packets = node.radio().framesSent();
    std::printf("Volcano monitoring, %.0f simulated minutes:\n", minutes);
    std::printf("  samples taken:          %llu (expect ~%.0f at 100 Hz)\n",
                static_cast<unsigned long long>(samples),
                minutes * 60.0 * 100.0);
    std::printf("  packets transmitted:    %llu (expect ~%.0f at 5/s)\n",
                static_cast<unsigned long long>(packets),
                minutes * 60.0 * 5.0);
    std::printf("  base station received:  %llu packets (%llu samples)\n",
                static_cast<unsigned long long>(
                    baseStation.uniqueDeliveries()),
                static_cast<unsigned long long>(
                    baseStation.uniqueDeliveries() * 20));

    if (!baseStation.received().empty()) {
        const net::Frame &first = baseStation.received().front();
        std::printf("  first packet: %zu samples, seq %u:",
                    first.payload.size(), first.seq);
        for (std::uint8_t v : first.payload)
            std::printf(" %u", v);
        std::printf("\n");
    }

    std::printf("\nNode power at this 100 Hz duty point:\n");
    for (const ComponentPower &row : node.powerReport()) {
        if (row.averageWatts > 1e-12) {
            std::printf("  %-18s %10.3f uW\n", row.component.c_str(),
                        row.averageWatts * 1e6);
        }
    }
    std::printf("  %-18s %10.3f uW  (paper Figure 6: ~2 uW at the "
                "volcano's 0.12 duty cycle)\n",
                "TOTAL", node.totalAverageWatts() * 1e6);
    return 0;
}
