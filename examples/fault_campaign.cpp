/**
 * @file
 * A fault-injection campaign against a small multi-hop network: deep
 * channel fades (Gilbert-Elliott bursty loss), soft errors in SRAM, a
 * stuck-busy message processor, and a supply droop, all replayed
 * deterministically from a declarative plan. The same scenario runs
 * twice — once with the paper's fire-and-forget radio, once with the
 * MAC reliability layer (ACK + 3 retries, CSMA-CA backoff, auto-ACK)
 * and the watchdog armed — and reports end-to-end delivery.
 */

#include <cstdio>
#include <string>

#include "core/apps.hh"
#include "core/sensor_node.hh"
#include "fault/fault_injector.hh"
#include "net/packet_sink.hh"
#include "sim/simulation.hh"

using namespace ulp;
using namespace ulp::core;

namespace {

/** Two minutes of faults: fades throughout, point faults mid-run. */
const char *campaign = R"(
# seconds  action            args
0.0        channel-ge        0.03 0.25 0.0 0.95  ; ~4-frame fades, 11% of frames
30.0       sram-random-flip  4                   ; cosmic-ray burst
45.0       wedge             msgProc 2.0         ; relay msgproc hangs 2 s
60.0       droop             0.0005              ; supply brown-out spike
90.0       slowdown          msgProc 2.0         ; marginal silicon from here on
)";

struct RunResult
{
    std::uint64_t sampled = 0;
    std::uint64_t delivered = 0;
    std::uint64_t retransmissions = 0;
    std::uint64_t txFailures = 0;
    std::uint64_t barks = 0;
    double nodeWatts = 0.0;
};

RunResult
runCampaign(bool reliable)
{
    sim::Simulation simulation;
    net::Channel channel(simulation, "channel",
                         net::Channel::defaultBitRate, /*seed=*/7);
    net::PacketSink baseStation(channel);

    NodeConfig sensor_cfg;
    sensor_cfg.address = 0x0010;
    sensor_cfg.seed = 100;
    sensor_cfg.sensorSignal = [](sim::Tick) { return 80; };
    SensorNode sensor(simulation, "sensor", sensor_cfg, &channel);

    NodeConfig relay_cfg;
    relay_cfg.address = 0x0011;
    relay_cfg.seed = 101;
    relay_cfg.sensorSignal = [](sim::Tick) { return 0; };
    SensorNode relay(simulation, "relay", relay_cfg, &channel);

    apps::AppParams sensor_params;
    sensor_params.samplePeriodCycles = 100'000; // 1 Hz
    sensor_params.dest = 0x0000;
    apps::AppParams relay_params = sensor_params;
    relay_params.samplePeriodCycles = 0xFFFF;
    relay_params.threshold = 255; // forward-only
    if (reliable) {
        sensor_params.macRetries = 3;
        relay_params.macRetries = 3;
        sensor_params.watchdogCycles = 500'000; // 5 s
        relay_params.watchdogCycles = 500'000;
    }
    apps::install(sensor, apps::buildApp1(sensor_params));
    apps::install(relay, apps::buildApp3(relay_params));

    fault::FaultInjector injector(simulation, "injector", /*seed=*/7);
    injector.attachChannel(&channel);
    injector.attachSram(&relay.memory());
    injector.attachDevice("msgProc", &relay.msgProc());
    fault::CampaignPlan plan = fault::parsePlan(campaign);
    // This small network has no harvesting store: drop the droop action
    // rather than fatal on the unattached supply.
    std::erase_if(plan.actions, [](const fault::Action &a) {
        return a.kind == fault::Action::Kind::Droop;
    });
    injector.run(plan);

    simulation.runForSeconds(120.0);

    RunResult r;
    r.sampled = sensor.msgProc().framesPrepared();
    r.delivered = baseStation.deliveriesFrom(sensor_cfg.address);
    r.retransmissions =
        sensor.radio().retransmissions() + relay.radio().retransmissions();
    r.txFailures =
        sensor.radio().txFailures() + relay.radio().txFailures();
    r.barks =
        sensor.timers().watchdogBarks() + relay.timers().watchdogBarks();
    r.nodeWatts = sensor.totalAverageWatts();
    return r;
}

void
report(const char *name, const RunResult &r)
{
    std::printf("%-18s %8llu %10llu %7.1f %%  %8llu %8llu %6llu %10.3f\n",
                name, static_cast<unsigned long long>(r.sampled),
                static_cast<unsigned long long>(r.delivered),
                r.sampled ? 100.0 * r.delivered / r.sampled : 0.0,
                static_cast<unsigned long long>(r.retransmissions),
                static_cast<unsigned long long>(r.txFailures),
                static_cast<unsigned long long>(r.barks),
                r.nodeWatts * 1e6);
}

} // namespace

int
main()
{
    std::printf("Fault campaign: sensor -> relay -> base station, "
                "120 s, 1 Hz samples.\n");
    std::printf("Plan:%s\n", campaign);
    std::printf("%-18s %8s %10s %10s %8s %8s %6s %10s\n", "radio",
                "sampled", "delivered", "ratio", "retx", "txfail",
                "barks", "uW/node");

    RunResult legacy = runCampaign(false);
    RunResult reliable = runCampaign(true);
    report("fire-and-forget", legacy);
    report("MAC + watchdog", reliable);

    std::printf("\nSame seeds, same faults: the reliability layer turns "
                "burst losses into\nretransmissions (and bounded "
                "failures) instead of silently lost readings.\n");
    return 0;
}
